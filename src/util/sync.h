// s4::Mutex / s4::SharedMutex / s4::CondVar: the only sanctioned
// synchronisation primitives in the tree (lint rule S4L010 confines the raw
// std:: primitives to this header).
//
// The wrappers buy two kinds of always-on checking that naked std::mutex
// cannot provide:
//
//  1. Compile-time lock discipline (Clang Thread Safety Analysis). Every
//     class is a CAPABILITY; shared state is declared S4_GUARDED_BY its
//     mutex; internal helpers declare S4_REQUIRES. A clang build with
//     -Werror=thread-safety (the dedicated CI job) rejects unguarded access,
//     double acquisition, a missing release, or calling a REQUIRES function
//     without the lock — on every path, not just the paths a test executes.
//     Under non-clang compilers the annotation macros expand to nothing and
//     the wrappers cost exactly a std::mutex.
//
//  2. Runtime lock-rank checking (Debug/sanitizer builds). The Clang
//     analysis proves *where* locks are held but not the *order* they are
//     acquired in, so deadlock freedom still needs a checked hierarchy.
//     Every Mutex carries a LockRank from the documented hierarchy below; a
//     thread acquiring a lock whose rank is not strictly greater than every
//     lock it already holds aborts immediately, printing both ranks — so an
//     ordering bug dies deterministically on the first wrong acquisition in
//     any Debug/TSan/ASan test run instead of deadlocking once a year.
//
// Lock hierarchy (see DESIGN.md section 16 for the full table):
//
//   kExecutor (10) -> kDevice (20) -> kMetrics (30) -> kTracer (40)
//
// A thread may only acquire ranks in strictly increasing order. The only
// nested acquisition today is executor -> device (DriveExecutor::FindWork
// consults BlockDevice::busy_until() while holding the dispatch lock);
// metrics and tracer are leaf locks that never nest inside each other.
// Adding a mutex = pick the lowest rank that is strictly greater than every
// lock held when yours is acquired, add it to the enum and the DESIGN.md
// table, and give every field it protects an S4_GUARDED_BY.
#ifndef S4_SRC_UTIL_SYNC_H_
#define S4_SRC_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis annotation macros. No-ops off clang.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define S4_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define S4_THREAD_ANNOTATION(x)  // no-op: analysis is clang-only
#endif

// On a class: instances are capabilities (lockable things).
#define S4_CAPABILITY(x) S4_THREAD_ANNOTATION(capability(x))
// On a class: RAII object that acquires in its ctor, releases in its dtor.
#define S4_SCOPED_CAPABILITY S4_THREAD_ANNOTATION(scoped_lockable)
// On a data member: may only be read/written while holding `x`.
#define S4_GUARDED_BY(x) S4_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the *pointee* may only be accessed while holding `x`.
#define S4_PT_GUARDED_BY(x) S4_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: acquires/releases the capability.
#define S4_ACQUIRE(...) S4_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define S4_ACQUIRE_SHARED(...) \
  S4_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define S4_RELEASE(...) S4_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define S4_RELEASE_SHARED(...) \
  S4_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define S4_TRY_ACQUIRE(...) \
  S4_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// On a function: caller must hold the capability (exclusively / at least
// shared) for the duration of the call.
#define S4_REQUIRES(...) S4_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define S4_REQUIRES_SHARED(...) \
  S4_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
// On a function: caller must NOT hold the capability (the function acquires
// it itself; holding it would self-deadlock).
#define S4_EXCLUDES(...) S4_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: returns a reference to the given capability.
#define S4_RETURN_CAPABILITY(x) S4_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis for one function. Lint rule S4L010
// counts every use and requires a written rationale on the same or the
// preceding line; the target for src/ is zero.
#define S4_NO_THREAD_SAFETY_ANALYSIS \
  S4_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Runtime lock-rank checking. On by default in Debug builds (!NDEBUG);
// sanitizer builds force it on from CMake so TSan/ASan runs check ordering
// even at -O2. Release builds compile the wrappers down to the raw std
// primitives.
// ---------------------------------------------------------------------------

#ifndef S4_LOCK_RANK_CHECKS
#if !defined(NDEBUG)
#define S4_LOCK_RANK_CHECKS 1
#else
#define S4_LOCK_RANK_CHECKS 0
#endif
#endif

namespace s4 {

// The documented lock hierarchy. Values are spaced so a future mid-layer
// lock can slot in without renumbering. DESIGN.md section 16 is the
// authoritative table; keep the two in sync.
enum class LockRank : int {
  kExecutor = 10,  // DriveExecutor::mu_ — dispatch queues and drive states
  kDevice = 20,    // BlockDevice::mu_ — media, fault state, arm timeline
  kMetrics = 30,   // MetricRegistry::mu_ — instrument maps (leaf)
  kTracer = 40,    // Tracer::mu_ — span buffer (leaf)
};

namespace internal {
// Aborts (printing both ranks) when `rank` is not strictly greater than
// every rank the calling thread already holds, or when `mu` is already held
// (recursive acquisition). Otherwise records the acquisition.
void PushLockRank(const void* mu, int rank, const char* name);
// Removes `mu` from the calling thread's held set.
void PopLockRank(const void* mu);
}  // namespace internal

// Plain exclusive mutex with a mandatory rank and name. Non-recursive.
class S4_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name)
      : rank_(static_cast<int>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() S4_ACQUIRE() {
#if S4_LOCK_RANK_CHECKS
    // Check+record before blocking, so an ordering violation aborts with a
    // report instead of deadlocking against the thread holding the peer.
    internal::PushLockRank(this, rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() S4_RELEASE() {
    mu_.unlock();
#if S4_LOCK_RANK_CHECKS
    internal::PopLockRank(this);
#endif
  }

  bool TryLock() S4_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if S4_LOCK_RANK_CHECKS
    internal::PushLockRank(this, rank_, name_);
#endif
    return true;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_;
  const char* const name_;
};

// Reader/writer mutex. Shared acquisitions participate in rank checking the
// same way exclusive ones do (a shared-then-exclusive reacquire on the same
// thread is still a self-deadlock).
class S4_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name)
      : rank_(static_cast<int>(rank)), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() S4_ACQUIRE() {
#if S4_LOCK_RANK_CHECKS
    internal::PushLockRank(this, rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() S4_RELEASE() {
    mu_.unlock();
#if S4_LOCK_RANK_CHECKS
    internal::PopLockRank(this);
#endif
  }

  void LockShared() S4_ACQUIRE_SHARED() {
#if S4_LOCK_RANK_CHECKS
    internal::PushLockRank(this, rank_, name_);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() S4_RELEASE_SHARED() {
    mu_.unlock_shared();
#if S4_LOCK_RANK_CHECKS
    internal::PopLockRank(this);
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const int rank_;
  const char* const name_;
};

// RAII exclusive lock of a Mutex for a scope.
class S4_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) S4_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() S4_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive lock of a SharedMutex for a scope.
class S4_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) S4_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() S4_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) lock of a SharedMutex for a scope.
class S4_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) S4_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() S4_RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to s4::Mutex. Wait atomically releases the mutex
// and reacquires it before returning, mirroring both transitions in the
// rank checker (the reacquire re-runs the ordering check, so waking with a
// now-illegal held set still aborts rather than deadlocking later).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) S4_REQUIRES(mu) {
    // Adopt the already-held native mutex; release() afterwards hands it
    // back still locked, so the caller's MutexLock/Unlock stays balanced.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
#if S4_LOCK_RANK_CHECKS
    internal::PopLockRank(mu);
#endif
    cv_.wait(native);
#if S4_LOCK_RANK_CHECKS
    internal::PushLockRank(mu, mu->rank_, mu->name_);
#endif
    native.release();  // still locked: ownership stays with the caller's scope
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace s4

#endif  // S4_SRC_UTIL_SYNC_H_
