// SegmentUsageTable (SUT): per-segment allocation state and live-sector
// accounting.
//
// Unlike classic LFS, a segment with zero *live* sectors cannot necessarily
// be reclaimed: historical sectors (old versions inside the detection window)
// also pin a segment. The table therefore tracks live and historical counts
// separately; a segment is reclaimable only when both reach zero.
#ifndef S4_SRC_LFS_USAGE_TABLE_H_
#define S4_SRC_LFS_USAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/lfs/format.h"
#include "src/util/status.h"

namespace s4 {

enum class SegmentState : uint8_t {
  kFree = 0,    // available for allocation
  kActive = 1,  // currently being filled by the segment writer
  kFull = 2,    // sealed; candidate for cleaning
};

struct SegmentInfo {
  SegmentState state = SegmentState::kFree;
  uint32_t live_sectors = 0;      // reachable from some object's current state
  uint32_t history_sectors = 0;   // reachable only via the history pool
  uint32_t written_sectors = 0;   // total payload+summary sectors ever written
  SimTime last_write_time = 0;
};

class SegmentUsageTable {
 public:
  explicit SegmentUsageTable(uint32_t segment_count, uint32_t segment_sectors);

  uint32_t segment_count() const { return static_cast<uint32_t>(segments_.size()); }
  uint32_t segment_sectors() const { return segment_sectors_; }

  const SegmentInfo& Info(SegmentId seg) const { return segments_[seg]; }

  // Allocates the next free segment (round robin from the last allocation).
  // Returns nullopt when no free segment exists.
  std::optional<SegmentId> Allocate(SimTime now);

  // Seals the active segment.
  void Seal(SegmentId seg);

  // Crash-recovery override of a segment's state (roll-forward reconstructs
  // post-checkpoint allocations and seals).
  void SetState(SegmentId seg, SegmentState state) { segments_[seg].state = state; }

  // Accounting transitions. `n` is in sectors.
  void AddLive(SegmentId seg, uint32_t n, SimTime now);
  void AddWritten(SegmentId seg, uint32_t n);
  // A write superseded data: the sectors stay on disk as history.
  void LiveToHistory(SegmentId seg, uint32_t n);
  // The cleaner expired historical sectors.
  void ReleaseHistory(SegmentId seg, uint32_t n);
  // Live data relocated or permanently deleted with no history retention
  // (e.g. versioning disabled).
  void ReleaseLive(SegmentId seg, uint32_t n);

  // A sealed segment with no live and no history sectors can be reused.
  bool Reclaimable(SegmentId seg) const;
  // Marks a reclaimable segment free again. Caller must have verified
  // Reclaimable().
  void Reclaim(SegmentId seg);

  uint32_t FreeSegments() const;
  uint64_t LiveSectorsTotal() const;
  uint64_t HistorySectorsTotal() const;

  // Sealed segment with the lowest (live+history)/written ratio, for the
  // compacting cleaner. Returns nullopt if none sealed.
  std::optional<SegmentId> CompactionVictim() const;

  // Round-robin origin of the next Allocate(). Persisted in the checkpoint:
  // between checkpoints allocation order is a pure function of this hint and
  // the table state, which lets recovery enumerate exactly the segments the
  // writer could have touched since the checkpoint instead of scanning all.
  SegmentId next_alloc_hint() const { return next_alloc_hint_; }

  // Checkpoint serialisation.
  void EncodeTo(class Encoder* enc) const;
  static Result<SegmentUsageTable> DecodeFrom(class Decoder* dec);

 private:
  uint32_t segment_sectors_;
  std::vector<SegmentInfo> segments_;
  SegmentId next_alloc_hint_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_LFS_USAGE_TABLE_H_
