#include "src/lfs/usage_table.h"

#include "src/util/check.h"
#include "src/util/codec.h"

namespace s4 {

SegmentUsageTable::SegmentUsageTable(uint32_t segment_count, uint32_t segment_sectors)
    : segment_sectors_(segment_sectors) {
  segments_.resize(segment_count);
}

std::optional<SegmentId> SegmentUsageTable::Allocate(SimTime now) {
  uint32_t n = segment_count();
  for (uint32_t i = 0; i < n; ++i) {
    SegmentId seg = (next_alloc_hint_ + i) % n;
    if (segments_[seg].state == SegmentState::kFree) {
      segments_[seg] = SegmentInfo();
      segments_[seg].state = SegmentState::kActive;
      segments_[seg].last_write_time = now;
      next_alloc_hint_ = (seg + 1) % n;
      return seg;
    }
  }
  return std::nullopt;
}

void SegmentUsageTable::Seal(SegmentId seg) {
  S4_CHECK(segments_[seg].state == SegmentState::kActive);
  segments_[seg].state = SegmentState::kFull;
}

void SegmentUsageTable::AddLive(SegmentId seg, uint32_t n, SimTime now) {
  segments_[seg].live_sectors += n;
  segments_[seg].last_write_time = now;
}

void SegmentUsageTable::AddWritten(SegmentId seg, uint32_t n) {
  segments_[seg].written_sectors += n;
}

void SegmentUsageTable::LiveToHistory(SegmentId seg, uint32_t n) {
  S4_CHECK(segments_[seg].live_sectors >= n);
  segments_[seg].live_sectors -= n;
  segments_[seg].history_sectors += n;
}

void SegmentUsageTable::ReleaseHistory(SegmentId seg, uint32_t n) {
  S4_CHECK(segments_[seg].history_sectors >= n);
  segments_[seg].history_sectors -= n;
}

void SegmentUsageTable::ReleaseLive(SegmentId seg, uint32_t n) {
  S4_CHECK(segments_[seg].live_sectors >= n);
  segments_[seg].live_sectors -= n;
}

bool SegmentUsageTable::Reclaimable(SegmentId seg) const {
  const SegmentInfo& info = segments_[seg];
  return info.state == SegmentState::kFull && info.live_sectors == 0 &&
         info.history_sectors == 0;
}

void SegmentUsageTable::Reclaim(SegmentId seg) {
  S4_CHECK(Reclaimable(seg));
  segments_[seg] = SegmentInfo();
}

uint32_t SegmentUsageTable::FreeSegments() const {
  uint32_t n = 0;
  for (const auto& s : segments_) {
    if (s.state == SegmentState::kFree) {
      ++n;
    }
  }
  return n;
}

uint64_t SegmentUsageTable::LiveSectorsTotal() const {
  uint64_t n = 0;
  for (const auto& s : segments_) {
    n += s.live_sectors;
  }
  return n;
}

uint64_t SegmentUsageTable::HistorySectorsTotal() const {
  uint64_t n = 0;
  for (const auto& s : segments_) {
    n += s.history_sectors;
  }
  return n;
}

std::optional<SegmentId> SegmentUsageTable::CompactionVictim() const {
  std::optional<SegmentId> best;
  double best_ratio = 1.0;
  for (SegmentId seg = 0; seg < segments_.size(); ++seg) {
    const SegmentInfo& s = segments_[seg];
    if (s.state != SegmentState::kFull || s.written_sectors == 0) {
      continue;
    }
    double ratio =
        static_cast<double>(s.live_sectors + s.history_sectors) / s.written_sectors;
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = seg;
    }
  }
  return best;
}

void SegmentUsageTable::EncodeTo(Encoder* enc) const {
  enc->PutVarint(segment_sectors_);
  enc->PutVarint(segments_.size());
  for (const auto& s : segments_) {
    enc->PutU8(static_cast<uint8_t>(s.state));
    enc->PutVarint(s.live_sectors);
    enc->PutVarint(s.history_sectors);
    enc->PutVarint(s.written_sectors);
    enc->PutI64(s.last_write_time);
  }
  enc->PutVarint(next_alloc_hint_);
}

Result<SegmentUsageTable> SegmentUsageTable::DecodeFrom(Decoder* dec) {
  S4_ASSIGN_OR_RETURN(uint64_t segment_sectors, dec->Varint());
  S4_ASSIGN_OR_RETURN(uint64_t count, dec->Varint());
  SegmentUsageTable table(static_cast<uint32_t>(count), static_cast<uint32_t>(segment_sectors));
  for (uint64_t i = 0; i < count; ++i) {
    SegmentInfo s;
    S4_ASSIGN_OR_RETURN(uint8_t state, dec->U8());
    if (state > 2) {
      return Status::DataCorruption("bad segment state");
    }
    s.state = static_cast<SegmentState>(state);
    S4_ASSIGN_OR_RETURN(uint64_t live, dec->Varint());
    S4_ASSIGN_OR_RETURN(uint64_t hist, dec->Varint());
    S4_ASSIGN_OR_RETURN(uint64_t written, dec->Varint());
    S4_ASSIGN_OR_RETURN(s.last_write_time, dec->I64());
    s.live_sectors = static_cast<uint32_t>(live);
    s.history_sectors = static_cast<uint32_t>(hist);
    s.written_sectors = static_cast<uint32_t>(written);
    table.segments_[i] = s;
  }
  S4_ASSIGN_OR_RETURN(uint64_t hint, dec->Varint());
  if (count > 0 && hint >= count) {
    return Status::DataCorruption("bad allocation hint");
  }
  table.next_alloc_hint_ = static_cast<SegmentId>(hint);
  return table;
}

}  // namespace s4
