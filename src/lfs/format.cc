#include "src/lfs/format.h"

#include "src/util/codec.h"
#include "src/util/crc32.h"

namespace s4 {

Result<Bytes> ChunkSummary::Encode() const {
  Encoder enc(kSectorSize);
  enc.PutU32(kChunkMagic);
  enc.PutU64(seq);
  enc.PutI64(write_time);
  enc.PutU32(payload_crc);
  enc.PutVarint(records.size());
  for (const auto& r : records) {
    enc.PutU8(static_cast<uint8_t>(r.kind));
    enc.PutVarint(r.object_id);
    enc.PutVarint(r.block_index);
    enc.PutVarint(r.sectors);
  }
  Bytes out = enc.Take();
  if (out.size() + 4 > kSectorSize) {
    return Status::Internal("chunk summary overflow");
  }
  out.resize(kSectorSize - 4, 0);
  uint32_t crc = Crc32c(out);
  Encoder tail;
  tail.PutU32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Result<ChunkSummary> ChunkSummary::Decode(ByteSpan sector) {
  if (sector.size() != kSectorSize) {
    return Status::DataCorruption("chunk summary wrong size");
  }
  uint32_t stored_crc;
  {
    Decoder crc_dec(sector.subspan(kSectorSize - 4));
    S4_ASSIGN_OR_RETURN(stored_crc, crc_dec.U32());
  }
  if (Crc32c(sector.subspan(0, kSectorSize - 4)) != stored_crc) {
    return Status::DataCorruption("chunk summary crc mismatch");
  }
  Decoder dec(sector.subspan(0, kSectorSize - 4));
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kChunkMagic) {
    return Status::DataCorruption("chunk summary bad magic");
  }
  ChunkSummary s;
  S4_ASSIGN_OR_RETURN(s.seq, dec.U64());
  S4_ASSIGN_OR_RETURN(s.write_time, dec.I64());
  S4_ASSIGN_OR_RETURN(s.payload_crc, dec.U32());
  S4_ASSIGN_OR_RETURN(uint64_t n, dec.Varint());
  s.records.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChunkRecord r;
    S4_ASSIGN_OR_RETURN(uint8_t kind, dec.U8());
    if (kind < 1 || kind > 4) {
      return Status::DataCorruption("chunk record bad kind");
    }
    r.kind = static_cast<RecordKind>(kind);
    S4_ASSIGN_OR_RETURN(r.object_id, dec.Varint());
    S4_ASSIGN_OR_RETURN(r.block_index, dec.Varint());
    S4_ASSIGN_OR_RETURN(uint64_t sectors, dec.Varint());
    r.sectors = static_cast<uint16_t>(sectors);
    s.records.push_back(r);
  }
  return s;
}

Bytes Superblock::Encode() const {
  Encoder enc(kSectorSize);
  enc.PutU32(kSuperblockMagic);
  enc.PutU64(total_sectors);
  enc.PutU32(segment_sectors);
  enc.PutU32(segment_count);
  enc.PutU64(checkpoint_a);
  enc.PutU64(checkpoint_b);
  enc.PutU32(checkpoint_sectors);
  enc.PutU64(first_segment);
  enc.PutU64(audit_marker_a);
  enc.PutU64(audit_marker_b);
  enc.PutU64(epoch);
  enc.PutU8(clean);
  enc.PutU64(clean_seq);
  enc.PutU64(sb_mid);
  enc.PutU64(sb_tail);
  enc.PutU32(mid_seg);
  Bytes out = enc.Take();
  out.resize(kSectorSize - 4, 0);
  uint32_t crc = Crc32c(out);
  Encoder tail;
  tail.PutU32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Result<Superblock> Superblock::Decode(ByteSpan sector) {
  if (sector.size() != kSectorSize) {
    return Status::DataCorruption("superblock wrong size");
  }
  uint32_t stored_crc;
  {
    Decoder crc_dec(sector.subspan(kSectorSize - 4));
    S4_ASSIGN_OR_RETURN(stored_crc, crc_dec.U32());
  }
  if (Crc32c(sector.subspan(0, kSectorSize - 4)) != stored_crc) {
    return Status::DataCorruption("superblock crc mismatch");
  }
  Decoder dec(sector.subspan(0, kSectorSize - 4));
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kSuperblockMagic) {
    return Status::DataCorruption("superblock bad magic");
  }
  Superblock sb;
  S4_ASSIGN_OR_RETURN(sb.total_sectors, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.segment_sectors, dec.U32());
  S4_ASSIGN_OR_RETURN(sb.segment_count, dec.U32());
  S4_ASSIGN_OR_RETURN(sb.checkpoint_a, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.checkpoint_b, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.checkpoint_sectors, dec.U32());
  S4_ASSIGN_OR_RETURN(sb.first_segment, dec.U64());
  // Pre-chain volumes never wrote these fields; the sector's zero padding
  // decodes as 0 ("no marker"), which is exactly the legacy meaning.
  S4_ASSIGN_OR_RETURN(sb.audit_marker_a, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.audit_marker_b, dec.U64());
  // Likewise: single-copy volumes decode epoch 0, dirty, no replicas.
  S4_ASSIGN_OR_RETURN(sb.epoch, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.clean, dec.U8());
  S4_ASSIGN_OR_RETURN(sb.clean_seq, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.sb_mid, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.sb_tail, dec.U64());
  S4_ASSIGN_OR_RETURN(sb.mid_seg, dec.U32());
  return sb;
}

}  // namespace s4
