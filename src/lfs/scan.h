// Log scanning for crash recovery: iterate the chunks of a segment in write
// order, yielding each record's kind, back-reference, and disk address.
#ifndef S4_SRC_LFS_SCAN_H_
#define S4_SRC_LFS_SCAN_H_

#include <functional>
#include <vector>

#include "src/lfs/format.h"
#include "src/sim/block_device.h"

namespace s4 {

struct ScannedRecord {
  RecordKind kind;
  uint64_t object_id;
  uint64_t block_index;
  DiskAddr addr;
  uint16_t sectors;
};

struct ScannedChunk {
  uint64_t seq;
  SimTime write_time;
  SegmentId segment;
  std::vector<ScannedRecord> records;
};

// Reads the chunks of `segment` front to back. Stops at the first sector that
// does not decode as a valid chunk summary (the unwritten tail, or a torn
// write). Returns the valid chunks found.
Result<std::vector<ScannedChunk>> ScanSegment(BlockDevice* device, const Superblock& sb,
                                              SegmentId segment);

// Scans every segment and returns all chunks with seq > after_seq, sorted by
// seq — the roll-forward stream for crash recovery.
Result<std::vector<ScannedChunk>> ScanLogAfter(BlockDevice* device, const Superblock& sb,
                                               uint64_t after_seq);

}  // namespace s4

#endif  // S4_SRC_LFS_SCAN_H_
