// Log scanning for crash recovery: iterate the chunks of a segment in write
// order, yielding each record's kind, back-reference, and disk address.
#ifndef S4_SRC_LFS_SCAN_H_
#define S4_SRC_LFS_SCAN_H_

#include <functional>
#include <vector>

#include "src/lfs/format.h"
#include "src/sim/block_device.h"

namespace s4 {

struct ScannedRecord {
  RecordKind kind;
  uint64_t object_id;
  uint64_t block_index;
  DiskAddr addr;
  uint16_t sectors;
  // Journal records only: the record's on-platter bytes, captured from the
  // segment read the scan already paid for. Replay decodes these in memory
  // instead of re-seeking to every journal sector it just passed over.
  Bytes raw;
};

struct ScannedChunk {
  uint64_t seq;
  SimTime write_time;
  SegmentId segment;
  std::vector<ScannedRecord> records;
};

struct SegmentScanOptions {
  // Sectors into the segment to start at. Recovery resumes the checkpointed
  // active segment from its checkpointed fill instead of re-reading chunks
  // the checkpoint already covers.
  uint32_t start_offset = 0;
  // Stop at the first chunk whose seq is below this. A valid-looking chunk
  // older than the scan's floor is leftover platter data from the segment's
  // previous life, not log tail — everything after it is equally stale.
  uint64_t min_seq = 0;
  // Skip the payload read + CRC for chunks with seq <= this. Chunks at or
  // below the checkpoint seq were durable before the checkpoint was written,
  // so they cannot be the torn tail; only their summaries drive the scan.
  uint64_t verify_after_seq = 0;
};

// Reads the chunks of `segment` front to back. Stops at the first sector that
// does not decode as a valid chunk summary (the unwritten tail, or a torn
// write). Returns the valid chunks found.
Result<std::vector<ScannedChunk>> ScanSegment(BlockDevice* device, const Superblock& sb,
                                              SegmentId segment,
                                              const SegmentScanOptions& opts = {});

// Scans every segment and returns all chunks with seq > after_seq, sorted by
// seq — the roll-forward stream for crash recovery.
Result<std::vector<ScannedChunk>> ScanLogAfter(BlockDevice* device, const Superblock& sb,
                                               uint64_t after_seq);

}  // namespace s4

#endif  // S4_SRC_LFS_SCAN_H_
