// SegmentWriter: the append-only write path of the log.
//
// Records (data blocks, journal sectors, inode checkpoints, indirect blocks)
// are appended to an in-memory chunk buffer and assigned their final disk
// addresses immediately. Flush() lays the chunk down with one sequential disk
// write: [summary sector][payload sectors...]. This is what gives S4 its
// LFS-like performance: many small logical updates become one large physical
// write, and old versions never have to be moved first.
#ifndef S4_SRC_LFS_SEGMENT_WRITER_H_
#define S4_SRC_LFS_SEGMENT_WRITER_H_

#include <unordered_map>

#include "src/lfs/format.h"
#include "src/lfs/usage_table.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"

namespace s4 {

struct SegmentWriterStats {
  uint64_t records_appended = 0;
  uint64_t chunks_flushed = 0;
  uint64_t segments_sealed = 0;
  uint64_t sectors_flushed = 0;
  // Payload bytes that joined an already-open chunk (group commit riding an
  // existing pending disk write) vs total bytes laid down by Flush. The
  // ratio is the group-commit win: high coalesced/flushed means many logical
  // appends per physical write.
  uint64_t bytes_coalesced = 0;
  uint64_t bytes_flushed = 0;
};

class SegmentWriter {
 public:
  // All pointers are borrowed and must outlive the writer.
  SegmentWriter(BlockDevice* device, const Superblock* sb, SegmentUsageTable* sut,
                SimClock* clock, uint64_t next_seq);

  // Appends a record; returns its assigned disk address. `payload` must be a
  // whole number of sectors. Fails with kOutOfSpace when no free segment is
  // available for a needed rollover. A non-null `ctx` attributes any disk
  // writes this append triggers (chunk/segment overflow) to that request.
  Result<DiskAddr> Append(RecordKind kind, uint64_t object_id, uint64_t block_index,
                          ByteSpan payload, OpContext* ctx = nullptr);

  // Writes any buffered chunk to disk. Idempotent when empty.
  Status Flush(OpContext* ctx = nullptr);

  // Serves reads of records that are still only in the chunk buffer.
  // Returns true and fills `out` if `addr` is buffered.
  bool ReadPending(DiskAddr addr, uint64_t sectors, Bytes* out) const;

  // Crash recovery: resume appending into `segment` at `fill_sectors`. If the
  // remaining space is too small to hold a summary plus one sector, the
  // segment is sealed instead. The SUT must already mark it kActive.
  void Resume(SegmentId segment, uint32_t fill_sectors);

  uint64_t next_seq() const { return next_seq_; }
  SegmentId active_segment() const { return active_segment_; }

  // Sectors left in the active segment (0 if none allocated yet).
  uint32_t ActiveSegmentRemaining() const;

  const SegmentWriterStats& stats() const { return stats_; }

 private:
  // Space currently needed in the segment for the buffered chunk, including
  // its summary sector.
  uint32_t PendingSectors() const;
  Status OpenSegmentIfNeeded();
  Status RolloverSegment(OpContext* ctx);

  BlockDevice* device_;
  const Superblock* sb_;
  SegmentUsageTable* sut_;
  SimClock* clock_;

  SegmentId active_segment_ = kNullSegment;
  uint32_t fill_sectors_ = 0;  // sectors of the active segment already on disk
  uint64_t next_seq_;

  // Buffered chunk, laid out exactly as it will hit the disk: the first
  // sector is reserved for the summary (encoded in place at Flush) and
  // payloads land at their final offsets as they are appended, so Flush
  // never rebuilds the buffer. Empty when no records are pending.
  ChunkSummary pending_summary_;
  Bytes chunk_;
  size_t pending_summary_bytes_ = 0;  // encoded size estimate of records
  // addr -> payload-relative {off,len} (off excludes the summary sector).
  std::unordered_map<DiskAddr, std::pair<size_t, size_t>> pending_index_;

  SegmentWriterStats stats_;
};

}  // namespace s4

#endif  // S4_SRC_LFS_SEGMENT_WRITER_H_
