// On-disk format constants and record types for the S4 log-structured layout.
//
// Disk geometry (all addresses are sector LBAs; sector = 512B):
//
//   sector 0          superblock (fixed location, rewritten on format only)
//   checkpoint A      two alternating checkpoint regions holding the object
//   checkpoint B      map + segment usage table; highest-seq valid one wins
//   segments...       the log: power-of-two sized segments
//
// Each segment is written front-to-back as a sequence of *chunks* (LFS
// partial segments). A chunk is one summary sector followed by its payload
// sectors, written with a single sequential disk write at sync time. Chunk
// summaries carry a monotonically increasing sequence number and a CRC, which
// is what crash recovery rolls forward over.
//
// Payload record kinds:
//   kData            an 8-sector (4KB) object data block
//   kJournal         a 1-sector journal sector (packed metadata deltas,
//                    backward-chained per object; see src/journal/)
//   kInodeCheckpoint a full serialised inode (1..n sectors)
//   kIndirect        an indirect pointer block (8 sectors)
#ifndef S4_SRC_LFS_FORMAT_H_
#define S4_SRC_LFS_FORMAT_H_

#include <cstdint>
#include <vector>

#include "src/sim/block_device.h"
#include "src/util/bytes.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace s4 {

// Object data blocks are 4KB (8 sectors), like the paper's NFS transfer size.
constexpr uint32_t kBlockSize = 4096;
constexpr uint32_t kSectorsPerBlock = kBlockSize / kSectorSize;

// A disk address: sector LBA. 0 is the superblock, so 0 doubles as "null".
using DiskAddr = uint64_t;
constexpr DiskAddr kNullAddr = 0;

using SegmentId = uint32_t;
constexpr SegmentId kNullSegment = 0xFFFFFFFFu;

constexpr uint32_t kSuperblockMagic = 0x53344D47;  // "S4MG"
constexpr uint32_t kChunkMagic = 0x53344348;       // "S4CH"
constexpr uint32_t kCheckpointMagic = 0x53344350;  // "S4CP"

enum class RecordKind : uint8_t {
  kData = 1,
  kJournal = 2,
  kInodeCheckpoint = 3,
  kIndirect = 4,
};

// One record within a chunk summary: `sectors` payload sectors belonging to
// `object_id`. For kData/kIndirect records, `block_index` is the logical
// block number within the object (back-reference used by the compacting
// cleaner).
struct ChunkRecord {
  RecordKind kind;
  uint64_t object_id;
  uint64_t block_index;
  uint16_t sectors;
};

// Summary sector at the head of each chunk.
struct ChunkSummary {
  uint64_t seq = 0;          // global monotonically increasing chunk number
  SimTime write_time = 0;
  uint32_t payload_crc = 0;  // CRC32C over all payload sectors of the chunk
  std::vector<ChunkRecord> records;

  uint32_t PayloadSectors() const {
    uint32_t n = 0;
    for (const auto& r : records) {
      n += r.sectors;
    }
    return n;
  }

  // Serialises into exactly one sector (fails if too many records).
  Result<Bytes> Encode() const;
  static Result<ChunkSummary> Decode(ByteSpan sector);
};

// Superblock: geometry plus mount lifecycle state. Replicated at up to three
// deterministic locations (sector 0, mid-disk, last sector); every rewrite
// bumps `epoch` so mount can vote: the valid copy with the highest epoch
// wins, stale or torn copies are healed from the winner. A clean unmount
// stamps `clean`/`clean_seq`, letting the next mount skip the log scan.
struct Superblock {
  uint64_t total_sectors = 0;
  uint32_t segment_sectors = 0;    // sectors per segment
  uint32_t segment_count = 0;
  DiskAddr checkpoint_a = 0;       // first sector of checkpoint region A
  DiskAddr checkpoint_b = 0;
  uint32_t checkpoint_sectors = 0; // size of each checkpoint region
  DiskAddr first_segment = 0;      // first sector of segment 0
  // Audit commit marker sectors (A/B alternating by generation parity; see
  // src/journal/commit_marker.h). 0 on pre-chain volumes: chain verification
  // then treats the whole audit object as uncommitted tail.
  DiskAddr audit_marker_a = 0;
  DiskAddr audit_marker_b = 0;
  // Replica/lifecycle state. Single-copy legacy volumes decode these from
  // the sector's zero padding: sb_mid == 0 means "no replicas, no mid-disk
  // hole" and the segment area is linear.
  uint64_t epoch = 0;      // bumped on every superblock rewrite
  uint8_t clean = 0;       // 1 = volume was cleanly unmounted
  uint64_t clean_seq = 0;  // checkpoint seq vouched for by a clean unmount
  DiskAddr sb_mid = 0;     // mid-disk replica sector (0 = none)
  DiskAddr sb_tail = 0;    // tail replica sector (0 = none)
  // Segment index displaced by the one-sector mid-disk replica hole:
  // segments at or after this index start one sector later. Meaningful only
  // when sb_mid != 0.
  SegmentId mid_seg = 0;

  DiskAddr SegmentStart(SegmentId seg) const {
    DiskAddr addr = first_segment + static_cast<uint64_t>(seg) * segment_sectors;
    if (sb_mid != 0 && seg >= mid_seg) addr += 1;
    return addr;
  }
  SegmentId SegmentOf(DiskAddr addr) const {
    uint64_t rel = addr - first_segment;
    if (sb_mid != 0 && addr > sb_mid) rel -= 1;
    return static_cast<SegmentId>(rel / segment_sectors);
  }

  Bytes Encode() const;
  static Result<Superblock> Decode(ByteSpan sector);
};

}  // namespace s4

#endif  // S4_SRC_LFS_FORMAT_H_
