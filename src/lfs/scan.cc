#include "src/lfs/scan.h"

#include <algorithm>

#include "src/util/crc32.h"

namespace s4 {

Result<std::vector<ScannedChunk>> ScanSegment(BlockDevice* device, const Superblock& sb,
                                              SegmentId segment,
                                              const SegmentScanOptions& opts) {
  std::vector<ScannedChunk> chunks;
  DiskAddr seg_start = sb.SegmentStart(segment);
  uint32_t offset = opts.start_offset;
  if (offset >= sb.segment_sectors) {
    return chunks;
  }
  // Probe one sector first: segments probed for emptiness (the roll-forward
  // chain terminator) stay a single-sector read. On a valid summary, pull the
  // whole remaining tail in one command — on a seek-dominated device one long
  // transfer beats a positioning delay per chunk, and it keeps lane-parallel
  // scans from turning every per-chunk read into a cross-segment seek.
  Bytes buf;
  S4_RETURN_IF_ERROR(device->Read(seg_start + offset, 1, &buf));
  auto probe = ChunkSummary::Decode(buf);
  if (!probe.ok() || probe->seq < opts.min_seq) {
    return chunks;  // unwritten, torn, or stale head: nothing to scan
  }
  const uint32_t tail = sb.segment_sectors - offset;  // sectors in buf once full
  if (tail > 1) {
    Bytes rest;
    S4_RETURN_IF_ERROR(device->Read(seg_start + offset + 1, tail - 1, &rest));
    buf.insert(buf.end(), rest.begin(), rest.end());
  }
  const auto sectors_at = [&buf](uint32_t rel, uint32_t n) {
    return ByteSpan(buf).subspan(uint64_t{rel} * kSectorSize, uint64_t{n} * kSectorSize);
  };
  uint32_t rel = 0;  // sector index into buf; disk offset is offset + rel
  while (rel < tail) {
    auto summary = ChunkSummary::Decode(sectors_at(rel, 1));
    if (!summary.ok()) {
      break;  // unwritten tail or torn chunk: stop scanning this segment
    }
    if (summary->seq < opts.min_seq) {
      break;  // stale chunk from the segment's previous life: end of log tail
    }
    uint32_t payload = summary->PayloadSectors();
    if (rel + 1 + payload > tail) {
      break;  // summary claims more payload than fits: treat as torn
    }
    // The summary CRC only proves the summary sector persisted. A power cut
    // can land the summary and tear the payload (the chunk is one sequential
    // write, but the platter commits sector by sector). Verify the payload
    // CRC before trusting the chunk; a mismatch means a torn tail. Chunks at
    // or below verify_after_seq predate the checkpoint and were durable when
    // it was written, so the check is skipped.
    if (payload > 0 && summary->seq > opts.verify_after_seq &&
        Crc32c(sectors_at(rel + 1, payload)) != summary->payload_crc) {
      break;  // torn chunk: stop scanning this segment
    }
    ScannedChunk chunk;
    chunk.seq = summary->seq;
    chunk.write_time = summary->write_time;
    chunk.segment = segment;
    uint32_t rec_rel = rel + 1;
    DiskAddr addr = seg_start + offset + rec_rel;
    for (const auto& rec : summary->records) {
      ScannedRecord out{rec.kind, rec.object_id, rec.block_index, addr, rec.sectors, {}};
      if (rec.kind == RecordKind::kJournal) {
        // A JournalSector encodes into exactly one sector; that is also all
        // replay ever decodes from a journal record.
        ByteSpan raw = sectors_at(rec_rel, 1);
        out.raw.assign(raw.begin(), raw.end());
      }
      chunk.records.push_back(std::move(out));
      addr += rec.sectors;
      rec_rel += rec.sectors;
    }
    chunks.push_back(std::move(chunk));
    rel += 1 + payload;
  }
  return chunks;
}

Result<std::vector<ScannedChunk>> ScanLogAfter(BlockDevice* device, const Superblock& sb,
                                               uint64_t after_seq) {
  std::vector<ScannedChunk> all;
  SegmentScanOptions opts;
  opts.verify_after_seq = after_seq;  // pre-checkpoint payloads cannot be torn
  for (SegmentId seg = 0; seg < sb.segment_count; ++seg) {
    S4_ASSIGN_OR_RETURN(std::vector<ScannedChunk> chunks, ScanSegment(device, sb, seg, opts));
    for (auto& c : chunks) {
      if (c.seq > after_seq) {
        all.push_back(std::move(c));
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ScannedChunk& a, const ScannedChunk& b) { return a.seq < b.seq; });
  return all;
}

}  // namespace s4
