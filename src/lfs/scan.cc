#include "src/lfs/scan.h"

#include <algorithm>

#include "src/util/crc32.h"

namespace s4 {

Result<std::vector<ScannedChunk>> ScanSegment(BlockDevice* device, const Superblock& sb,
                                              SegmentId segment) {
  std::vector<ScannedChunk> chunks;
  DiskAddr seg_start = sb.SegmentStart(segment);
  uint32_t offset = 0;
  while (offset < sb.segment_sectors) {
    Bytes sector;
    S4_RETURN_IF_ERROR(device->Read(seg_start + offset, 1, &sector));
    auto summary = ChunkSummary::Decode(sector);
    if (!summary.ok()) {
      break;  // unwritten tail or torn chunk: stop scanning this segment
    }
    uint32_t payload = summary->PayloadSectors();
    if (offset + 1 + payload > sb.segment_sectors) {
      break;  // summary claims more payload than fits: treat as torn
    }
    // The summary CRC only proves the summary sector persisted. A power cut
    // can land the summary and tear the payload (the chunk is one sequential
    // write, but the platter commits sector by sector). Verify the payload
    // CRC before trusting the chunk; a mismatch means a torn tail.
    if (payload > 0) {
      Bytes body;
      S4_RETURN_IF_ERROR(device->Read(seg_start + offset + 1, payload, &body));
      if (Crc32c(body) != summary->payload_crc) {
        break;  // torn chunk: stop scanning this segment
      }
    }
    ScannedChunk chunk;
    chunk.seq = summary->seq;
    chunk.write_time = summary->write_time;
    chunk.segment = segment;
    DiskAddr addr = seg_start + offset + 1;
    for (const auto& rec : summary->records) {
      chunk.records.push_back(
          ScannedRecord{rec.kind, rec.object_id, rec.block_index, addr, rec.sectors});
      addr += rec.sectors;
    }
    chunks.push_back(std::move(chunk));
    offset += 1 + payload;
  }
  return chunks;
}

Result<std::vector<ScannedChunk>> ScanLogAfter(BlockDevice* device, const Superblock& sb,
                                               uint64_t after_seq) {
  std::vector<ScannedChunk> all;
  for (SegmentId seg = 0; seg < sb.segment_count; ++seg) {
    S4_ASSIGN_OR_RETURN(std::vector<ScannedChunk> chunks, ScanSegment(device, sb, seg));
    for (auto& c : chunks) {
      if (c.seq > after_seq) {
        all.push_back(std::move(c));
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const ScannedChunk& a, const ScannedChunk& b) { return a.seq < b.seq; });
  return all;
}

}  // namespace s4
