#include "src/lfs/segment_writer.h"

#include <cstring>

#include "src/util/check.h"
#include "src/util/crc32.h"

namespace s4 {
namespace {

// Encoded summary budget: sector minus CRC and fixed header fields.
constexpr size_t kSummaryBudget = kSectorSize - 4 /*crc*/ - 4 /*magic*/ - 8 /*seq*/ -
                                  8 /*time*/ - 4 /*payload crc*/ - 5 /*count varint*/;

// Worst-case encoded size of one ChunkRecord.
size_t RecordEncodedSize(const ChunkRecord& r) {
  auto varint_size = [](uint64_t v) {
    size_t n = 1;
    while (v >= 0x80) {
      v >>= 7;
      ++n;
    }
    return n;
  };
  return 1 + varint_size(r.object_id) + varint_size(r.block_index) + varint_size(r.sectors);
}

}  // namespace

SegmentWriter::SegmentWriter(BlockDevice* device, const Superblock* sb, SegmentUsageTable* sut,
                             SimClock* clock, uint64_t next_seq)
    : device_(device), sb_(sb), sut_(sut), clock_(clock), next_seq_(next_seq) {}

uint32_t SegmentWriter::PendingSectors() const {
  if (pending_summary_.records.empty()) {
    return 0;
  }
  return 1 + pending_summary_.PayloadSectors();
}

uint32_t SegmentWriter::ActiveSegmentRemaining() const {
  if (active_segment_ == kNullSegment) {
    return 0;
  }
  return sb_->segment_sectors - fill_sectors_ - PendingSectors();
}

Status SegmentWriter::OpenSegmentIfNeeded() {
  if (active_segment_ != kNullSegment) {
    return Status::Ok();
  }
  auto seg = sut_->Allocate(clock_->Now());
  if (!seg.has_value()) {
    return Status::OutOfSpace("no free segments");
  }
  active_segment_ = *seg;
  fill_sectors_ = 0;
  return Status::Ok();
}

Status SegmentWriter::RolloverSegment(OpContext* ctx) {
  S4_RETURN_IF_ERROR(Flush(ctx));
  if (active_segment_ != kNullSegment) {
    sut_->Seal(active_segment_);
    ++stats_.segments_sealed;
    active_segment_ = kNullSegment;
  }
  return OpenSegmentIfNeeded();
}

Result<DiskAddr> SegmentWriter::Append(RecordKind kind, uint64_t object_id, uint64_t block_index,
                                       ByteSpan payload, OpContext* ctx) {
  ScopedSpan span(ctx, "lfs.append");
  S4_CHECK(payload.size() % kSectorSize == 0 && !payload.empty());
  uint32_t payload_sectors = static_cast<uint32_t>(payload.size() / kSectorSize);
  S4_CHECK(payload_sectors + 1 <= sb_->segment_sectors);

  S4_RETURN_IF_ERROR(OpenSegmentIfNeeded());

  ChunkRecord rec{kind, object_id, block_index, static_cast<uint16_t>(payload_sectors)};
  size_t rec_bytes = RecordEncodedSize(rec);

  // Start a fresh chunk if the summary sector is full.
  if (pending_summary_bytes_ + rec_bytes > kSummaryBudget) {
    S4_RETURN_IF_ERROR(Flush(ctx));
  }
  // Roll to a new segment if this record does not fit in the current one.
  uint32_t needed = payload_sectors + (pending_summary_.records.empty() ? 1 : 0);
  if (fill_sectors_ + PendingSectors() + needed > sb_->segment_sectors) {
    S4_RETURN_IF_ERROR(RolloverSegment(ctx));
  }

  // Address: summary sector sits at the chunk start, payloads follow in order.
  DiskAddr chunk_start = sb_->SegmentStart(active_segment_) + fill_sectors_;
  DiskAddr addr = chunk_start + 1 + pending_summary_.PayloadSectors();

  // Buffered path without an intermediate copy: the payload goes straight to
  // its final position in the chunk buffer, behind the reserved summary
  // sector. Flush only fills in the summary — it never re-copies payloads.
  if (chunk_.empty()) {
    chunk_.resize(kSectorSize);  // summary placeholder
  } else {
    stats_.bytes_coalesced += payload.size();
  }
  pending_summary_.records.push_back(rec);
  pending_summary_bytes_ += rec_bytes;
  size_t off = chunk_.size() - kSectorSize;
  chunk_.insert(chunk_.end(), payload.begin(), payload.end());
  pending_index_[addr] = {off, payload.size()};

  sut_->AddLive(active_segment_, payload_sectors, clock_->Now());
  sut_->AddWritten(active_segment_, payload_sectors);
  ++stats_.records_appended;
  return addr;
}

void SegmentWriter::Resume(SegmentId segment, uint32_t fill_sectors) {
  S4_CHECK(pending_summary_.records.empty());
  if (fill_sectors + 2 > sb_->segment_sectors) {
    sut_->Seal(segment);
    ++stats_.segments_sealed;
    active_segment_ = kNullSegment;
    fill_sectors_ = 0;
    return;
  }
  active_segment_ = segment;
  fill_sectors_ = fill_sectors;
}

Status SegmentWriter::Flush(OpContext* ctx) {
  if (pending_summary_.records.empty()) {
    return Status::Ok();
  }
  ScopedSpan span(ctx, "lfs.flush");
  pending_summary_.seq = next_seq_++;
  pending_summary_.write_time = clock_->Now();
  // Cover the payload so recovery can tell a fully persisted chunk from one
  // whose summary landed but whose payload was torn by a power cut.
  pending_summary_.payload_crc =
      Crc32c(ByteSpan(chunk_.data() + kSectorSize, chunk_.size() - kSectorSize));
  S4_ASSIGN_OR_RETURN(Bytes summary, pending_summary_.Encode());
  S4_CHECK(summary.size() == kSectorSize);
  std::memcpy(chunk_.data(), summary.data(), kSectorSize);

  DiskAddr chunk_start = sb_->SegmentStart(active_segment_) + fill_sectors_;
  S4_RETURN_IF_ERROR(device_->Write(chunk_start, chunk_, ctx));

  uint32_t chunk_sectors = static_cast<uint32_t>(chunk_.size() / kSectorSize);
  fill_sectors_ += chunk_sectors;
  sut_->AddWritten(active_segment_, 1);  // the summary sector
  ++stats_.chunks_flushed;
  stats_.sectors_flushed += chunk_sectors;
  stats_.bytes_flushed += chunk_.size();

  pending_summary_ = ChunkSummary();
  chunk_.clear();
  pending_summary_bytes_ = 0;
  pending_index_.clear();
  return Status::Ok();
}

bool SegmentWriter::ReadPending(DiskAddr addr, uint64_t sectors, Bytes* out) const {
  auto it = pending_index_.find(addr);
  if (it == pending_index_.end()) {
    return false;
  }
  auto [off, len] = it->second;
  if (len != sectors * kSectorSize) {
    return false;
  }
  auto payload_begin = chunk_.begin() + kSectorSize;
  out->assign(payload_begin + off, payload_begin + off + len);
  return true;
}

}  // namespace s4
