#include "src/exec/drive_executor.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace s4 {
namespace {

// splitmix64 finalizer: spreads consecutive object ids across the stripe
// space so adjacent objects land on independent stripes.
uint64_t StripeOf(ObjectId id) {
  uint64_t x = id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Creates allocate from shared drive state (the object id space), not from
// any one object, so they all serialise on one designated stripe. A collision
// with a hashed object stripe costs only a spurious ordering edge.
constexpr uint64_t kAllocStripe = 0x53344352ull;  // "S4CR"

}  // namespace

DriveExecutor::DriveExecutor(SimClock* clock, std::vector<S4Drive*> drives, Options opts)
    : clock_(clock), opts_(opts) {
  S4_CHECK(clock != nullptr);
  S4_CHECK(!drives.empty());
  S4_CHECK(opts_.workers >= 1 && opts_.workers <= SimClock::kMaxLanes - 1);
  S4_CHECK(opts_.max_pending_per_drive >= 1);
  {
    // No worker exists yet; the lock scope keeps the guarded-state writes
    // visibly disciplined for the thread-safety analysis all the same.
    MutexLock lock(&mu_);
    drives_.resize(drives.size());
    for (size_t i = 0; i < drives.size(); ++i) {
      S4_CHECK(drives[i] != nullptr);
      drives_[i].drive = drives[i];
      drives_[i].time_floor = clock->Now();
    }
    slot_free_.assign(static_cast<size_t>(opts_.workers), clock->Now());
    slot_busy_.assign(static_cast<size_t>(opts_.workers), false);
    paused_ = opts_.start_paused;
  }
  threads_.reserve(static_cast<size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

DriveExecutor::~DriveExecutor() {
  Drain();
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_work_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void DriveExecutor::Submit(int drive, uint64_t stripe, Mode mode, std::function<void()> fn) {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  DriveState& ds = drives_[static_cast<size_t>(drive)];
  while (ds.pending.size() >= opts_.max_pending_per_drive) {
    cv_space_.Wait(&mu_);
  }
  Task t;
  t.fn = std::move(fn);
  t.stripe = stripe;
  t.mode = mode;
  ds.pending.push_back(std::move(t));
  cv_work_.NotifyOne();
}

void DriveExecutor::Classify(const FramePeek& peek, uint64_t* stripe, Mode* mode) {
  *stripe = 0;
  *mode = Mode::kBarrier;
  if (!peek.single) {
    return;  // batch envelope or malformed bytes: strictest class
  }
  switch (peek.op) {
    case RpcOp::kRead:
    case RpcOp::kGetAttr:
    case RpcOp::kGetAclByUser:
    case RpcOp::kGetAclByIndex:
    case RpcOp::kGetVersionList:
      *mode = Mode::kShared;
      *stripe = StripeOf(peek.object);
      return;
    case RpcOp::kCreate:
      *mode = Mode::kExclusive;
      *stripe = kAllocStripe;
      return;
    case RpcOp::kWrite:
    case RpcOp::kXorWrite:
    case RpcOp::kAppend:
    case RpcOp::kTruncate:
    case RpcOp::kSetAttr:
    case RpcOp::kSetAcl:
    case RpcOp::kDelete:
    case RpcOp::kFlushObject:
      *mode = Mode::kExclusive;
      *stripe = StripeOf(peek.object);
      return;
    default:
      // Sync, Flush, SetWindow, partition ops, AuditChallenge: drive-global
      // effects, full barrier.
      return;
  }
}

void DriveExecutor::SubmitFrame(int drive, S4RpcServer* server, Bytes frame, Bytes* response) {
  S4_CHECK(server != nullptr);
  uint64_t stripe = 0;
  Mode mode = Mode::kBarrier;
  Classify(PeekRequestFrame(frame), &stripe, &mode);
  Submit(drive, stripe, mode, [server, frame = std::move(frame), response]() {
    Bytes r = server->Handle(frame);
    if (response != nullptr) {
      *response = std::move(r);
    }
  });
}

void DriveExecutor::AttachMaintenance(int drive, std::function<bool()> step) {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  DriveState& ds = drives_[static_cast<size_t>(drive)];
  // The hook may only be (re)bound while the drive is quiet: a worker invokes
  // it outside the lock.
  S4_CHECK(!ds.running_exclusive && ds.running_shared == 0);
  ds.maintenance = std::move(step);
}

void DriveExecutor::SubmitMaintenance(int drive) {
  {
    MutexLock lock(&mu_);
    S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
    drives_[static_cast<size_t>(drive)].maint_pending = true;
  }
  cv_work_.NotifyAll();
}

bool DriveExecutor::HasQueuedForeground(int drive) const {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  return !drives_[static_cast<size_t>(drive)].pending.empty();
}

uint64_t DriveExecutor::completed(int drive) const {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  return drives_[static_cast<size_t>(drive)].completed;
}

uint64_t DriveExecutor::maintenance_slices(int drive) const {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  return drives_[static_cast<size_t>(drive)].maint_slices;
}

SimDuration DriveExecutor::charged_span(int drive) const {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  return drives_[static_cast<size_t>(drive)].charged_span;
}

SimDuration DriveExecutor::gap_span(int drive) const {
  MutexLock lock(&mu_);
  S4_CHECK(drive >= 0 && drive < static_cast<int>(drives_.size()));
  return drives_[static_cast<size_t>(drive)].gap_span;
}

void DriveExecutor::Start() {
  MutexLock lock(&mu_);
  if (paused_) {
    paused_ = false;
    cv_work_.NotifyAll();
  }
}

void DriveExecutor::Drain() {
  MutexLock lock(&mu_);
  // Draining a parked executor would hang on its own queue: un-park first.
  if (paused_) {
    paused_ = false;
    cv_work_.NotifyAll();
  }
  ++drain_waiters_;
  while (!AllQuiet()) {
    cv_drain_.Wait(&mu_);
  }
  // Exclusivity established (workers cannot start anything while we hold the
  // lock and nothing is running): replay audit records parked by trailing
  // snapshot readers.
  for (DriveState& ds : drives_) {
    ds.drive->FlushDeferredAudits();
  }
  --drain_waiters_;
  cv_work_.NotifyAll();
}

bool DriveExecutor::AllQuiet() const {
  for (const DriveState& ds : drives_) {
    if (!DriveQuiet(ds)) {
      return false;
    }
  }
  return true;
}

bool DriveExecutor::FirstRunnable(const DriveState& ds, size_t* index_out) const {
  if (ds.pending.empty()) {
    return false;
  }
  const bool nothing_running = ds.running_shared == 0 && !ds.running_exclusive;
  // A head task overtaken too often stops all passing: scan only the head.
  const size_t scan_limit =
      ds.pending.front().head_passes >= opts_.max_head_passes ? 1 : ds.pending.size();
  std::vector<uint64_t> earlier;  // stripes of older pending tasks in scan
  for (size_t i = 0; i < scan_limit; ++i) {
    const Task& t = ds.pending[i];
    bool runnable = false;
    if (t.mode == Mode::kBarrier) {
      runnable = i == 0 && nothing_running;
    } else if (t.mode == Mode::kExclusive) {
      runnable = nothing_running &&
                 std::find(earlier.begin(), earlier.end(), t.stripe) == earlier.end();
    } else {  // kShared
      runnable =
          !ds.running_exclusive &&
          std::find(earlier.begin(), earlier.end(), t.stripe) == earlier.end() &&
          std::find(ds.running_stripes.begin(), ds.running_stripes.end(), t.stripe) ==
              ds.running_stripes.end();
    }
    if (runnable) {
      *index_out = i;
      return true;
    }
    if (t.mode == Mode::kBarrier) {
      return false;  // nothing younger passes a pending barrier
    }
    earlier.push_back(t.stripe);
  }
  return false;
}

bool DriveExecutor::FindWork(int* drive_out, Task* task_out, bool* is_maint_out) {
  const int n = static_cast<int>(drives_.size());
  for (int k = 0; k < n; ++k) {
    const int d = (next_drive_ + k) % n;
    DriveState& ds = drives_[static_cast<size_t>(d)];
    const bool nothing_running = ds.running_shared == 0 && !ds.running_exclusive;
    // Maintenance slice: only in a foreground-idle gap — unless it has been
    // starved past the limit, in which case one slice jumps the queue.
    if (ds.maint_pending && ds.maintenance && nothing_running && drain_waiters_ == 0 &&
        (ds.pending.empty() || ds.fg_since_maint >= opts_.maintenance_starvation_limit)) {
      ds.running_exclusive = true;
      *drive_out = d;
      *is_maint_out = true;
      next_drive_ = (d + 1) % n;
      return true;
    }
  }
  // Foreground: gather each drive's first runnable task, then pick the drive
  // to feed. Primary key: fewest tasks in flight — a drive already serving a
  // task has a stale horizon (it will jump when that task completes), so a
  // second dispatch there mostly stacks onto the same platter timeline while
  // an idle drive's platter sits unused. Secondary key: the earliest
  // achievable start time given the free capacity slots, so work lands where
  // it can begin soonest. Tertiary key: the smallest gap that start would
  // insert into the drive's serialized timeline — when two drives could start
  // at the same instant, feed the one whose chain the slot extends seamlessly
  // and leave the laggard for the worker whose slot matches it. Without the
  // gap key, racing workers swap drives and each swap ratchets the laggard's
  // chain up to the leader's time, serializing chains that should overlap.
  SimTime min_free_slot = 0;
  bool have_slot = false;
  for (size_t s = 0; s < slot_free_.size(); ++s) {
    if (slot_busy_[s]) {
      continue;
    }
    if (!have_slot || slot_free_[s] < min_free_slot) {
      min_free_slot = slot_free_[s];
      have_slot = true;
    }
  }
  int best = -1;
  size_t best_index = 0;
  int best_inflight = 0;
  SimTime best_start = 0;
  SimDuration best_gap = 0;
  for (int k = 0; k < n; ++k) {
    const int d = (next_drive_ + k) % n;
    DriveState& ds = drives_[static_cast<size_t>(d)];
    size_t index = 0;
    if (!FirstRunnable(ds, &index)) {
      continue;
    }
    const int inflight = ds.running_shared + (ds.running_exclusive ? 1 : 0);
    // horizon covers lane time the device never saw (cache hits, CPU);
    // DeviceBusyUntil covers commands issued by still-running tasks.
    const SimTime chain = std::max(
        std::max(ds.time_floor, ds.horizon), ds.drive->DeviceBusyUntil());
    const SimTime start = std::max(min_free_slot, chain);
    const SimDuration gap = start - chain;
    if (best < 0 || inflight < best_inflight ||
        (inflight == best_inflight &&
         (start < best_start || (start == best_start && gap < best_gap)))) {
      best = d;
      best_index = index;
      best_inflight = inflight;
      best_start = start;
      best_gap = gap;
    }
  }
  if (best < 0) {
    return false;
  }
  DriveState& ds = drives_[static_cast<size_t>(best)];
  if (best_index > 0) {
    ++ds.pending.front().head_passes;
  }
  *task_out = std::move(ds.pending[best_index]);
  ds.pending.erase(ds.pending.begin() + static_cast<std::ptrdiff_t>(best_index));
  if (task_out->mode == Mode::kShared) {
    ++ds.running_shared;
    ds.running_stripes.push_back(task_out->stripe);
  } else {
    ds.running_exclusive = true;
  }
  *drive_out = best;
  *is_maint_out = false;
  next_drive_ = (best + 1) % n;
  cv_space_.NotifyAll();
  return true;
}

void DriveExecutor::WorkerLoop(int worker) {
  mu_.Lock();
  for (;;) {
    int d = -1;
    Task task;
    bool is_maint = false;
    if (!paused_ && FindWork(&d, &task, &is_maint)) {
      DriveState& ds = drives_[static_cast<size_t>(d)];
      const bool exclusive = is_maint || task.mode != Mode::kShared;
      // Exclusive work chains on the drive's horizon: one mutation stream per
      // drive, strictly after everything the drive has already been charged
      // for. Shared snapshot reads start at the floor only — their lanes may
      // overlap on one drive because immutable reads take no locks; any media
      // commands they issue still serialise (and are charged the queueing
      // wait) on the device's own busy timeline, while cache hits genuinely
      // overlap. Cross-drive tasks overlap freely — that is where the
      // array's parallelism is.
      const SimTime chain =
          exclusive ? std::max(ds.time_floor, ds.horizon) : ds.time_floor;
      // Charge the task to a capacity slot (not to this OS thread): simulated
      // parallelism = worker count, independent of which thread won the
      // dispatch race. Best fit: the latest-free slot that does not delay the
      // chain, so low slots stay available for lagging drives; if every slot
      // is ahead of the chain, the earliest one delays it least. At most
      // `workers` tasks run at once, so an idle slot always exists.
      size_t slot = slot_free_.size();
      for (size_t s = 0; s < slot_free_.size(); ++s) {
        if (slot_busy_[s]) {
          continue;
        }
        if (slot == slot_free_.size()) {
          slot = s;
          continue;
        }
        const SimTime cur = slot_free_[s];
        const SimTime sel = slot_free_[slot];
        const bool cur_fits = cur <= chain;
        const bool sel_fits = sel <= chain;
        if ((cur_fits && (!sel_fits || cur > sel)) ||
            (!cur_fits && !sel_fits && cur < sel)) {
          slot = s;
        }
      }
      S4_CHECK(slot < slot_free_.size());
      slot_busy_[slot] = true;
      const SimTime start = std::max(slot_free_[slot], chain);
      // Diagnostic only: sim time this start leaves the drive frontier idle.
      const SimTime frontier = std::max(ds.time_floor, ds.horizon);
      ds.gap_span += start > frontier ? start - frontier : 0;
      bool more_maint = false;
      mu_.Unlock();
      SimTime end;
      {
        // Lane ids are 1-based; 0 is the serial (no-lane) path.
        SimClock::Lane lane(clock_, worker + 1, start, /*shared=*/!exclusive);
        if (exclusive) {
          // Safe exactly here: nothing else runs on this drive, so parked
          // snapshot-reader audit records can be appended to the chronicle.
          ds.drive->FlushDeferredAudits();
        }
        if (is_maint) {
          more_maint = ds.maintenance();
        } else {
          task.fn();
        }
        end = lane.now();
      }
      clock_->AbsorbLane(end);
      mu_.Lock();
      slot_free_[slot] = end;
      slot_busy_[slot] = false;
      ds.charged_span += end - start;
      ds.horizon = std::max(ds.horizon, end);
      if (exclusive) {
        ds.running_exclusive = false;
        // The floor hands simulated time from one exclusive op to the next,
        // keeping per-drive version timestamps strictly ascending.
        ds.time_floor = std::max(ds.time_floor, end);
      } else {
        --ds.running_shared;
        auto it = std::find(ds.running_stripes.begin(), ds.running_stripes.end(), task.stripe);
        S4_CHECK(it != ds.running_stripes.end());
        ds.running_stripes.erase(it);
      }
      if (is_maint) {
        ++ds.maint_slices;
        ds.fg_since_maint = 0;
        if (!more_maint) {
          ds.maint_pending = false;
        }
      } else {
        ++ds.completed;
        ++ds.fg_since_maint;
      }
      cv_work_.NotifyAll();
      cv_drain_.NotifyAll();
      continue;
    }
    if (stop_) {
      break;
    }
    cv_work_.Wait(&mu_);
  }
  mu_.Unlock();
}

}  // namespace s4
