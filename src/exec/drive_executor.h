// DriveExecutor: the concurrency substrate between the RPC boundary and the
// drives. A pool of worker threads executes submitted requests against one or
// more S4Drives, with three scheduling classes per drive:
//
//   kShared    — read-class ops (Read/GetAttr/GetACL*/GetVersionList). Any
//                number may overlap on one drive; each runs in snapshot mode
//                (see OpContext::snapshot) touching only immutable state.
//   kExclusive — mutating single-object ops. Runs alone on its drive, so the
//                drive interior needs no locks of its own.
//   kBarrier   — drive-global ops (Sync, Flush, admin, batches, malformed
//                frames). Runs alone AND in strict submission order: nothing
//                younger passes it, it passes nothing older.
//
// Ordering is striped per object: every task carries a stripe (a hash of the
// target object), and a task may never pass an older pending task of the same
// stripe. Independent objects never contend on ordering; same-object request
// sequences execute in exactly the order the client submitted them. A
// per-task head-pass budget bounds how long a blocked head task can be
// overtaken, so no stripe starves.
//
// Simulated time: each worker runs tasks inside a private SimClock lane, so
// overlapped requests accumulate cost in parallel; shared hardware still
// serialises through BlockDevice's busy timeline. Per drive the executor
// maintains a time floor raised by each exclusive task's end, which keeps
// version timestamps strictly ascending per drive — the self-securing
// history's ordering invariant — no matter which worker runs the op. The
// global clock converges to the makespan (max over lanes), so a drained
// executor leaves the clock exactly where a perfectly-overlapped hardware
// array would.
//
// Deferred audit: snapshot readers may not append to the audit log (that
// would mutate shared state), so the drive parks their records per lane; the
// executor replays them — in time order — as the prologue of the next
// exclusive/barrier task on that drive and at Drain(), when exclusivity makes
// the append safe. No record is ever dropped.
//
// Maintenance (cleaner) slices ride in idle gaps: a registered step runs only
// when a drive has no queued foreground work, except that a starvation floor
// forces a slice through after too many consecutive foreground completions.
#ifndef S4_SRC_EXEC_DRIVE_EXECUTOR_H_
#define S4_SRC_EXEC_DRIVE_EXECUTOR_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/drive/s4_drive.h"
#include "src/rpc/messages.h"
#include "src/rpc/transport.h"
#include "src/sim/sim_clock.h"
#include "src/util/sync.h"

namespace s4 {

class DriveExecutor {
 public:
  enum class Mode { kShared, kExclusive, kBarrier };

  struct Options {
    // Worker threads; capped at SimClock::kMaxLanes - 1 so every worker owns
    // a clock lane.
    int workers = 1;
    // Submit() blocks while a drive already has this many queued tasks.
    size_t max_pending_per_drive = 512;
    // Head task overtaken this many times becomes a temporary barrier.
    int max_head_passes = 64;
    // Foreground completions after which a requested-but-starved maintenance
    // slice runs even though the drive is not idle.
    uint64_t maintenance_starvation_limit = 128;
    // Workers start parked: Submit/SubmitFrame queue but nothing dispatches
    // until Start() (Drain() also un-parks). Lets a caller prime every
    // drive's queue first, so measured schedules reflect a saturated array
    // rather than the submission ramp. Priming more than
    // max_pending_per_drive tasks on one drive would deadlock — raise that
    // cap alongside this flag.
    bool start_paused = false;
  };

  DriveExecutor(SimClock* clock, std::vector<S4Drive*> drives, Options opts);
  ~DriveExecutor();

  DriveExecutor(const DriveExecutor&) = delete;
  DriveExecutor& operator=(const DriveExecutor&) = delete;

  // Queues `fn` on `drive` under explicit scheduling class + stripe. Blocks
  // for backpressure when the drive's queue is full. `fn` runs on a worker
  // thread inside a clock lane.
  void Submit(int drive, uint64_t stripe, Mode mode, std::function<void()> fn)
      S4_EXCLUDES(mu_);

  // Peeks the wire frame, derives (stripe, mode) from its op + object, and
  // queues a task that pushes it through `server`. A frame that does not
  // peek as a single request (batch, malformed) schedules as a barrier — the
  // strictest class — so hostile bytes cannot buy extra concurrency. The
  // response lands in *response (may be null) before Drain() returns.
  void SubmitFrame(int drive, S4RpcServer* server, Bytes frame, Bytes* response = nullptr)
      S4_EXCLUDES(mu_);

  // Releases workers parked by Options::start_paused. Idempotent.
  void Start() S4_EXCLUDES(mu_);

  // Scheduling class + stripe the executor assigns a peeked frame.
  static void Classify(const FramePeek& peek, uint64_t* stripe, Mode* mode);

  // Registers the idle-slice maintenance hook: one bounded unit of background
  // work (e.g. a budgeted cleaner pass); returns whether more work remains.
  void AttachMaintenance(int drive, std::function<bool()> step) S4_EXCLUDES(mu_);
  // Requests maintenance; slices run in idle gaps until the step reports no
  // more work.
  void SubmitMaintenance(int drive) S4_EXCLUDES(mu_);

  // True while the drive has queued (not yet started) foreground work. The
  // scheduler consults this before granting an idle maintenance slice.
  bool HasQueuedForeground(int drive) const S4_EXCLUDES(mu_);

  // Blocks until every queued and running foreground task has finished, then
  // flushes any remaining deferred audit records. Maintenance is not granted
  // new slices while a drain is waiting.
  void Drain() S4_EXCLUDES(mu_);

  // Foreground tasks completed on `drive` so far.
  uint64_t completed(int drive) const S4_EXCLUDES(mu_);
  // Maintenance slices granted on `drive` so far.
  uint64_t maintenance_slices(int drive) const S4_EXCLUDES(mu_);
  // Total simulated time charged to capacity slots for `drive`'s tasks
  // (lane end minus slot start, summed). The gap between this and the
  // device's own busy time is scheduling slack: slot time spent queueing on
  // a busy platter or replaying deferred audits.
  SimDuration charged_span(int drive) const S4_EXCLUDES(mu_);
  // Simulated time inserted as idle gaps into `drive`'s serialized timeline:
  // sum over tasks of (slot start - drive chain) whenever a task had to start
  // on a capacity slot that was ahead of the drive's own frontier. Zero means
  // every task extended its drive's chain seamlessly.
  SimDuration gap_span(int drive) const S4_EXCLUDES(mu_);

  int workers() const { return opts_.workers; }

 private:
  struct Task {
    std::function<void()> fn;
    uint64_t stripe = 0;
    Mode mode = Mode::kBarrier;
    int head_passes = 0;  // times a younger task overtook this one at head
  };

  struct DriveState {
    S4Drive* drive = nullptr;
    std::deque<Task> pending;
    int running_shared = 0;
    bool running_exclusive = false;
    std::vector<uint64_t> running_stripes;  // stripes of running shared tasks
    // Raised to each exclusive task's lane end; the start-time floor for
    // every later task on this drive. Monotone, so per-drive version
    // timestamps strictly ascend.
    SimTime time_floor = 0;
    std::function<bool()> maintenance;
    bool maint_pending = false;
    uint64_t fg_since_maint = 0;
    uint64_t completed = 0;
    uint64_t maint_slices = 0;
    SimDuration charged_span = 0;  // sum of (lane end - slot start) per task
    SimDuration gap_span = 0;      // sum of (slot start - chain) idle gaps
    // Max lane end observed on this drive: a proxy for how far the drive's
    // simulated timeline (device + floors) has advanced. Dispatch feeds the
    // laggiest drive first so all devices stay concurrently busy in sim time
    // instead of one drive's timeline racing ahead and parking slots.
    SimTime horizon = 0;
  };

  void WorkerLoop(int worker);
  // Scans for a runnable task under mu_; returns false if none. On success
  // the task is dequeued and its drive marked running.
  bool FindWork(int* drive_out, Task* task_out, bool* is_maint_out) S4_REQUIRES(mu_);
  // Index of the first task in ds.pending the scheduling rules allow to run
  // right now, honouring barriers, stripes, and the head-pass budget.
  bool FirstRunnable(const DriveState& ds, size_t* index_out) const S4_REQUIRES(mu_);
  bool DriveQuiet(const DriveState& ds) const S4_REQUIRES(mu_) {
    return ds.pending.empty() && ds.running_shared == 0 && !ds.running_exclusive;
  }
  // Every drive quiet: Drain()'s wake condition.
  bool AllQuiet() const S4_REQUIRES(mu_);

  SimClock* clock_;
  Options opts_;

  // Rank kExecutor: the bottom of the lock hierarchy — FindWork consults
  // BlockDevice::busy_until() (rank kDevice) while holding it.
  mutable Mutex mu_{LockRank::kExecutor, "DriveExecutor"};
  CondVar cv_work_;   // workers: new task / state change
  CondVar cv_space_;  // submitters: queue has room
  CondVar cv_drain_;  // Drain(): a task finished
  std::vector<DriveState> drives_ S4_GUARDED_BY(mu_);
  // Virtual worker-capacity slots, one per worker: each task's lane starts at
  // the earliest-free slot (bounded by its drive's floor) and parks the slot
  // at its end. Decoupling simulated capacity from which OS thread happens to
  // win the dispatch race keeps the modelled makespan a function of the
  // worker COUNT, not of host scheduling luck.
  std::vector<SimTime> slot_free_ S4_GUARDED_BY(mu_);
  // Reserved at dispatch, released at completion.
  std::vector<bool> slot_busy_ S4_GUARDED_BY(mu_);
  int next_drive_ S4_GUARDED_BY(mu_) = 0;  // round-robin scan origin
  int drain_waiters_ S4_GUARDED_BY(mu_) = 0;
  bool stop_ S4_GUARDED_BY(mu_) = false;
  // Workers parked until Start() (Options::start_paused).
  bool paused_ S4_GUARDED_BY(mu_) = false;

  // Written in the constructor before any worker exists and joined in the
  // destructor after all workers have stopped; never touched concurrently.
  std::vector<std::thread> threads_;
};

}  // namespace s4

#endif  // S4_SRC_EXEC_DRIVE_EXECUTOR_H_
