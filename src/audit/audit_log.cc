#include "src/audit/audit_log.h"

#include "src/audit/audit_chain.h"
#include "src/util/check.h"

namespace s4 {
namespace {

// Upper bound on one encoded AuditRecord: i64 + 2*u32 + 3 full varints +
// 3*u8 = 57 bytes; rounded up for slack.
constexpr size_t kMaxAuditRecordBytes = 64;

// True iff `tail` is a strict prefix of some valid record encoding — i.e.
// decoding failed only because the stream physically ended (a crash cut the
// final record short), not because the content is bad. Probes by extending
// the tail with zeros (zeros terminate varints and decode as legal fields)
// and checking the decoder needed bytes past the original end.
bool IsTruncatedTail(ByteSpan tail) {
  Bytes probe(tail.begin(), tail.end());
  probe.resize(tail.size() + kMaxAuditRecordBytes, 0);
  Decoder dec(probe);
  auto rec = AuditRecord::DecodeFrom(&dec);
  return rec.ok() && dec.position() > tail.size();
}

}  // namespace

const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kInvalid:
      return "Invalid";
    case RpcOp::kCreate:
      return "Create";
    case RpcOp::kDelete:
      return "Delete";
    case RpcOp::kRead:
      return "Read";
    case RpcOp::kWrite:
      return "Write";
    case RpcOp::kAppend:
      return "Append";
    case RpcOp::kTruncate:
      return "Truncate";
    case RpcOp::kGetAttr:
      return "GetAttr";
    case RpcOp::kSetAttr:
      return "SetAttr";
    case RpcOp::kGetAclByUser:
      return "GetACLByUser";
    case RpcOp::kGetAclByIndex:
      return "GetACLByIndex";
    case RpcOp::kSetAcl:
      return "SetACL";
    case RpcOp::kPCreate:
      return "PCreate";
    case RpcOp::kPDelete:
      return "PDelete";
    case RpcOp::kPList:
      return "PList";
    case RpcOp::kPMount:
      return "PMount";
    case RpcOp::kSync:
      return "Sync";
    case RpcOp::kFlush:
      return "Flush";
    case RpcOp::kFlushObject:
      return "FlushO";
    case RpcOp::kSetWindow:
      return "SetWindow";
    case RpcOp::kGetVersionList:
      return "GetVersionList";
    case RpcOp::kBatch:
      return "Batch";
    case RpcOp::kAuditChallenge:
      return "AuditChallenge";
    case RpcOp::kXorWrite:
      return "XorWrite";
  }
  return "Unknown";
}

void AuditRecord::EncodeTo(Encoder* enc) const {
  enc->PutI64(time);
  enc->PutU32(client);
  enc->PutU32(user);
  enc->PutU8(static_cast<uint8_t>(op));
  enc->PutVarint(object);
  enc->PutVarint(offset);
  enc->PutVarint(length);
  enc->PutU8(result);
  enc->PutU8(time_based ? 1 : 0);
}

Result<AuditRecord> AuditRecord::DecodeFrom(Decoder* dec) {
  AuditRecord r;
  S4_ASSIGN_OR_RETURN(r.time, dec->I64());
  S4_ASSIGN_OR_RETURN(r.client, dec->U32());
  S4_ASSIGN_OR_RETURN(r.user, dec->U32());
  S4_ASSIGN_OR_RETURN(uint8_t op, dec->U8());
  // 0 (kInvalid) is legal here: it marks a request rejected before decode.
  if (op > kMaxRpcOp) {
    return Status::DataCorruption("bad audit op");
  }
  r.op = static_cast<RpcOp>(op);
  S4_ASSIGN_OR_RETURN(r.object, dec->Varint());
  S4_ASSIGN_OR_RETURN(r.offset, dec->Varint());
  S4_ASSIGN_OR_RETURN(r.length, dec->Varint());
  S4_ASSIGN_OR_RETURN(r.result, dec->U8());
  S4_ASSIGN_OR_RETURN(uint8_t tb, dec->U8());
  r.time_based = tb != 0;
  return r;
}

bool AuditQuery::Matches(const AuditRecord& r) const {
  if (r.time < from || r.time > to) {
    return false;
  }
  if (client.has_value() && r.client != *client) {
    return false;
  }
  if (user.has_value() && r.user != *user) {
    return false;
  }
  if (object.has_value() && r.object != *object) {
    return false;
  }
  if (op.has_value() && r.op != *op) {
    return false;
  }
  return true;
}

void AuditLogCodec::Buffer(const AuditRecord& record) {
  if (chained_) {
    AppendChainFrame(record, &chain_state_, &buffer_);
  } else {
    record.EncodeTo(&buffer_);
  }
  ++records_total_;
  ++buffered_records_;
}

Bytes AuditLogCodec::TakeBuffered() {
  Bytes out = buffer_.Take();
  buffer_ = Encoder();
  buffered_records_ = 0;
  return out;
}

void AuditLogCodec::ResetChain(const AuditChainState& state) {
  S4_CHECK(buffer_.size() == 0);
  chain_state_ = state;
}

Status AuditLogCodec::DecodeAll(ByteSpan stream, const AuditQuery& query,
                                std::vector<AuditRecord>* out) {
  Decoder dec(stream);
  uint64_t index = 0;
  while (!dec.done()) {
    const size_t start = dec.position();
    auto rec = AuditRecord::DecodeFrom(&dec);
    if (!rec.ok()) {
      // Tolerate only a short read at the final record: the bytes from the
      // failure point to the end must be a strict prefix of a valid record
      // (the crash-truncated unflushed tail). Anything else — a flipped op
      // byte, a corrupt varint, garbage mid-stream — is real corruption and
      // must not be masked as truncation.
      if (IsTruncatedTail(stream.subspan(start))) {
        return Status::Ok();
      }
      return Status::DataCorruption("audit record " + std::to_string(index) +
                                    " at byte offset " + std::to_string(start) +
                                    " is corrupt: " + rec.status().message());
    }
    if (query.Matches(*rec)) {
      out->push_back(*rec);
    }
    ++index;
  }
  return Status::Ok();
}

}  // namespace s4
