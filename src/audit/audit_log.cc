#include "src/audit/audit_log.h"

namespace s4 {

const char* RpcOpName(RpcOp op) {
  switch (op) {
    case RpcOp::kInvalid:
      return "Invalid";
    case RpcOp::kCreate:
      return "Create";
    case RpcOp::kDelete:
      return "Delete";
    case RpcOp::kRead:
      return "Read";
    case RpcOp::kWrite:
      return "Write";
    case RpcOp::kAppend:
      return "Append";
    case RpcOp::kTruncate:
      return "Truncate";
    case RpcOp::kGetAttr:
      return "GetAttr";
    case RpcOp::kSetAttr:
      return "SetAttr";
    case RpcOp::kGetAclByUser:
      return "GetACLByUser";
    case RpcOp::kGetAclByIndex:
      return "GetACLByIndex";
    case RpcOp::kSetAcl:
      return "SetACL";
    case RpcOp::kPCreate:
      return "PCreate";
    case RpcOp::kPDelete:
      return "PDelete";
    case RpcOp::kPList:
      return "PList";
    case RpcOp::kPMount:
      return "PMount";
    case RpcOp::kSync:
      return "Sync";
    case RpcOp::kFlush:
      return "Flush";
    case RpcOp::kFlushObject:
      return "FlushO";
    case RpcOp::kSetWindow:
      return "SetWindow";
    case RpcOp::kGetVersionList:
      return "GetVersionList";
    case RpcOp::kBatch:
      return "Batch";
  }
  return "Unknown";
}

void AuditRecord::EncodeTo(Encoder* enc) const {
  enc->PutI64(time);
  enc->PutU32(client);
  enc->PutU32(user);
  enc->PutU8(static_cast<uint8_t>(op));
  enc->PutVarint(object);
  enc->PutVarint(offset);
  enc->PutVarint(length);
  enc->PutU8(result);
  enc->PutU8(time_based ? 1 : 0);
}

Result<AuditRecord> AuditRecord::DecodeFrom(Decoder* dec) {
  AuditRecord r;
  S4_ASSIGN_OR_RETURN(r.time, dec->I64());
  S4_ASSIGN_OR_RETURN(r.client, dec->U32());
  S4_ASSIGN_OR_RETURN(r.user, dec->U32());
  S4_ASSIGN_OR_RETURN(uint8_t op, dec->U8());
  // 0 (kInvalid) is legal here: it marks a request rejected before decode.
  if (op > kMaxRpcOp) {
    return Status::DataCorruption("bad audit op");
  }
  r.op = static_cast<RpcOp>(op);
  S4_ASSIGN_OR_RETURN(r.object, dec->Varint());
  S4_ASSIGN_OR_RETURN(r.offset, dec->Varint());
  S4_ASSIGN_OR_RETURN(r.length, dec->Varint());
  S4_ASSIGN_OR_RETURN(r.result, dec->U8());
  S4_ASSIGN_OR_RETURN(uint8_t tb, dec->U8());
  r.time_based = tb != 0;
  return r;
}

bool AuditQuery::Matches(const AuditRecord& r) const {
  if (r.time < from || r.time > to) {
    return false;
  }
  if (client.has_value() && r.client != *client) {
    return false;
  }
  if (user.has_value() && r.user != *user) {
    return false;
  }
  if (object.has_value() && r.object != *object) {
    return false;
  }
  if (op.has_value() && r.op != *op) {
    return false;
  }
  return true;
}

void AuditLogCodec::Buffer(const AuditRecord& record) {
  record.EncodeTo(&buffer_);
  ++records_total_;
}

Bytes AuditLogCodec::TakeBuffered() {
  Bytes out = buffer_.Take();
  buffer_ = Encoder();
  return out;
}

Status AuditLogCodec::DecodeAll(ByteSpan stream, const AuditQuery& query,
                                std::vector<AuditRecord>* out) {
  Decoder dec(stream);
  while (!dec.done()) {
    auto rec = AuditRecord::DecodeFrom(&dec);
    if (!rec.ok()) {
      // A truncated tail (crash before the final flush) is expected; stop.
      return Status::Ok();
    }
    if (query.Matches(*rec)) {
      out->push_back(*rec);
    }
  }
  return Status::Ok();
}

}  // namespace s4
