// Hash-chained framing for the audit log (the tamper-evident chronicle).
//
// Raw AuditRecord streams (audit_chain=false) cannot distinguish a flipped
// byte from a benign unflushed tail. Chained mode frames every record as
//
//   u16 len | varint seq | varint self_offset | record payload | u32 link
//
// where `len` counts the bytes after the u16 (through the trailing link),
// `seq` is a strictly monotone per-drive frame number, `self_offset` is the
// absolute byte offset of the frame inside the audit object (defeating
// replay/relocation of otherwise-valid frames), and `link` is a CRC32C over
// the predecessor frame's link followed by this frame's header and payload —
// a running digest chain anchored at kAuditChainSeed.
//
// A commit marker (src/journal/commit_marker.h) records the chain state at
// the last durability point. When a scan fails, the failing frame's position
// relative to the marker's committed size decides the verdict: inside the
// committed prefix it is kCorrupted (tampering/bit-rot), beyond it it is
// kCleanTail (a torn flush the crash ate).
//
// The CRC chain is not cryptographic and carries no secret: an adversary
// with full disk access can rewrite the whole chain plus both markers
// consistently. Tamper evidence against that adversary comes from the
// external challenge/response auditor (VerifyChallengeProof): an auditor
// that saved (seq, link) at time T forces the drive to produce a chain
// continuation consistent with the saved state.
#ifndef S4_SRC_AUDIT_AUDIT_CHAIN_H_
#define S4_SRC_AUDIT_AUDIT_CHAIN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/audit/audit_log.h"
#include "src/util/bytes.h"
#include "src/util/codec.h"
#include "src/util/status.h"

namespace s4 {

// Frame overhead floor: 1-byte seq varint + 1-byte offset varint + the
// smallest possible AuditRecord encoding (22 bytes) + 4-byte link.
// (AuditChainState and kAuditChainSeed live in audit_log.h so the codec can
// embed the state without an include cycle.)
inline constexpr uint16_t kMinAuditFrameLen = 28;

// Appends one framed record to `out`, advancing `state`.
void AppendChainFrame(const AuditRecord& record, AuditChainState* state, Encoder* out);

enum class AuditVerdict : uint8_t {
  kOk = 0,         // every byte accounted for, chain intact
  kCleanTail = 1,  // chain intact through the committed prefix; bytes past it
                   // are a torn flush (crash before the final durability point)
  kCorrupted = 2,  // chain break inside the committed prefix: tampering/bit-rot
};

const char* AuditVerdictName(AuditVerdict v);

// Result of walking a chained stream.
struct AuditChainScan {
  AuditVerdict verdict = AuditVerdict::kOk;
  uint64_t records = 0;         // frames accepted (chain-verified)
  uint64_t first_bad_seq = 0;   // expected seq at the failure point
  uint64_t bad_offset = 0;      // absolute byte offset of the failing frame
  uint64_t tail_bytes = 0;      // bytes at/after the failure (dropped)
  AuditChainState end_state;    // chain state after the last accepted frame
  // Chain state observed exactly at the committed_size boundary; valid only
  // when `commit_state_seen` (callers compare it against the marker).
  AuditChainState commit_state;
  bool commit_state_seen = false;
  std::string detail;           // human-readable first-divergence description
};

// Walks chained frames in `stream`, whose first byte sits at absolute object
// offset `base_offset`, starting from chain state `start` (which must satisfy
// start.next_offset == base_offset). `committed_size` is the absolute object
// size the commit marker vouches for; failures strictly below it verdict
// kCorrupted, failures at/after it verdict kCleanTail. Frames past
// committed_size that still verify are accepted (a flushed-but-unmarked
// tail). A non-null `sink` receives every accepted record in order.
AuditChainScan ScanChain(ByteSpan stream, uint64_t base_offset, const AuditChainState& start,
                         uint64_t committed_size,
                         const std::function<void(const AuditRecord&)>& sink);

// One round of the challenge/response protocol: the drive's claimed durable
// chain end plus the committed frames from the challenged offset (capped per
// round; the auditor iterates until it catches up to `end_state`).
struct AuditChallengeProof {
  AuditChainState end_state;  // chain state at the drive's committed size
  Bytes frames;               // frames [challenged offset, offset + size)
};

// Auditor-side check of one proof round: `frames` must be a whole-frame chain
// continuation starting exactly at saved->next_offset and linking to
// saved->link (every byte is drive-committed, so any divergence is a failed
// challenge, never a clean tail). On success `saved` advances past the
// frames; on failure it is untouched and the error names the divergence.
Status VerifyChallengeProof(ByteSpan frames, AuditChainState* saved);

}  // namespace s4

#endif  // S4_SRC_AUDIT_AUDIT_CHAIN_H_
