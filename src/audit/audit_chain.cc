#include "src/audit/audit_chain.h"

#include "src/util/check.h"
#include "src/util/crc32.h"

namespace s4 {
namespace {

void PutLinkLE(uint32_t link, uint8_t out[4]) {
  out[0] = static_cast<uint8_t>(link & 0xff);
  out[1] = static_cast<uint8_t>((link >> 8) & 0xff);
  out[2] = static_cast<uint8_t>((link >> 16) & 0xff);
  out[3] = static_cast<uint8_t>((link >> 24) & 0xff);
}

// The link digest covers the predecessor's link (little-endian) followed by
// every frame byte from the u16 length prefix through the end of the payload
// (everything except the trailing link itself).
uint32_t ComputeLink(uint32_t prev_link, ByteSpan frame_through_payload) {
  uint8_t prev[4];
  PutLinkLE(prev_link, prev);
  uint32_t state = Crc32cInit();
  state = Crc32cExtend(state, ByteSpan(prev, sizeof(prev)));
  state = Crc32cExtend(state, frame_through_payload);
  return Crc32cFinish(state);
}

std::string FrameError(uint64_t seq, uint64_t offset, const std::string& what) {
  return "frame seq=" + std::to_string(seq) + " at offset " + std::to_string(offset) + ": " + what;
}

}  // namespace

const char* AuditVerdictName(AuditVerdict v) {
  switch (v) {
    case AuditVerdict::kOk:
      return "ok";
    case AuditVerdict::kCleanTail:
      return "clean-tail";
    case AuditVerdict::kCorrupted:
      return "corrupted";
  }
  return "unknown";
}

void AppendChainFrame(const AuditRecord& record, AuditChainState* state, Encoder* out) {
  // Body = varint seq | varint self_offset | payload. The u16 prefix counts
  // body + 4 link bytes.
  Encoder body;
  body.PutVarint(state->next_seq);
  body.PutVarint(state->next_offset);
  record.EncodeTo(&body);
  const size_t frame_len = body.size() + 4;
  S4_CHECK(frame_len <= 0xffff);

  Encoder head;
  head.PutU16(static_cast<uint16_t>(frame_len));

  uint8_t prev[4];
  PutLinkLE(state->link, prev);
  uint32_t link_state = Crc32cInit();
  link_state = Crc32cExtend(link_state, ByteSpan(prev, sizeof(prev)));
  link_state = Crc32cExtend(link_state, head.bytes());
  link_state = Crc32cExtend(link_state, body.bytes());
  const uint32_t link = Crc32cFinish(link_state);

  out->PutBytes(head.bytes());
  out->PutBytes(body.bytes());
  out->PutU32(link);

  state->link = link;
  state->next_seq += 1;
  state->next_offset += 2 + frame_len;
}

AuditChainScan ScanChain(ByteSpan stream, uint64_t base_offset, const AuditChainState& start,
                         uint64_t committed_size,
                         const std::function<void(const AuditRecord&)>& sink) {
  AuditChainScan scan;
  scan.end_state = start;

  // Classify a failure at absolute offset `abs`: inside the committed prefix
  // it is tampering, at/after it it is a torn (never-marked-durable) tail.
  auto fail = [&](uint64_t abs, const std::string& what) {
    scan.verdict =
        abs < committed_size ? AuditVerdict::kCorrupted : AuditVerdict::kCleanTail;
    scan.first_bad_seq = scan.end_state.next_seq;
    scan.bad_offset = abs;
    scan.tail_bytes = base_offset + stream.size() - abs;
    scan.detail = FrameError(scan.end_state.next_seq, abs, what);
  };

  size_t pos = 0;
  while (pos < stream.size()) {
    const uint64_t abs = base_offset + pos;
    if (abs == committed_size && !scan.commit_state_seen) {
      scan.commit_state = scan.end_state;
      scan.commit_state_seen = true;
    }
    const size_t avail = stream.size() - pos;
    if (avail < 2) {
      fail(abs, "short length prefix");
      return scan;
    }
    const uint16_t frame_len =
        static_cast<uint16_t>(stream[pos]) | (static_cast<uint16_t>(stream[pos + 1]) << 8);
    if (frame_len < kMinAuditFrameLen) {
      fail(abs, "frame length " + std::to_string(frame_len) + " below minimum");
      return scan;
    }
    const uint64_t frame_total = 2ull + frame_len;
    if (frame_total > avail) {
      fail(abs, "frame extends past end of stream");
      return scan;
    }
    // A frame must not straddle the commit boundary: the marker vouches for
    // whole frames, so a committed_size inside a frame is itself divergence.
    if (abs < committed_size && abs + frame_total > committed_size) {
      fail(abs, "frame straddles commit marker boundary");
      return scan;
    }

    ByteSpan through_payload = stream.subspan(pos, frame_total - 4);
    Decoder dec(stream.subspan(pos + 2, frame_len));
    auto seq = dec.Varint();
    auto self_offset = dec.Varint();
    if (!seq.ok() || !self_offset.ok()) {
      fail(abs, "unreadable frame header");
      return scan;
    }
    if (*seq != scan.end_state.next_seq) {
      fail(abs, "sequence " + std::to_string(*seq) + " != expected " +
                    std::to_string(scan.end_state.next_seq));
      return scan;
    }
    if (*self_offset != abs) {
      fail(abs, "self-address " + std::to_string(*self_offset) + " != actual offset (replay?)");
      return scan;
    }
    auto rec = AuditRecord::DecodeFrom(&dec);
    if (!rec.ok()) {
      fail(abs, "payload decode: " + rec.status().ToString());
      return scan;
    }
    if (dec.remaining() != 4) {
      fail(abs, "payload length mismatch inside frame");
      return scan;
    }
    auto stored_link = dec.U32();
    if (!stored_link.ok()) {
      fail(abs, "unreadable link");
      return scan;
    }
    const uint32_t want = ComputeLink(scan.end_state.link, through_payload);
    if (*stored_link != want) {
      fail(abs, "link hash mismatch");
      return scan;
    }

    scan.records += 1;
    scan.end_state.link = *stored_link;
    scan.end_state.next_seq = *seq + 1;
    scan.end_state.next_offset = abs + frame_total;
    if (sink) sink(*rec);
    pos += frame_total;
  }

  if (scan.end_state.next_offset == committed_size && !scan.commit_state_seen) {
    scan.commit_state = scan.end_state;
    scan.commit_state_seen = true;
  }
  // The stream ended cleanly but short of what the marker vouches for: the
  // committed suffix is missing, which only tampering explains.
  if (scan.end_state.next_offset < committed_size) {
    scan.verdict = AuditVerdict::kCorrupted;
    scan.first_bad_seq = scan.end_state.next_seq;
    scan.bad_offset = scan.end_state.next_offset;
    scan.detail = FrameError(scan.end_state.next_seq, scan.end_state.next_offset,
                             "stream ends before committed size " + std::to_string(committed_size));
    return scan;
  }
  scan.verdict = AuditVerdict::kOk;
  return scan;
}

Status VerifyChallengeProof(ByteSpan frames, AuditChainState* saved) {
  // Proof frames are all committed on the drive, so any divergence — even at
  // the last byte — is a failed challenge, never a clean tail.
  const uint64_t committed = saved->next_offset + frames.size();
  AuditChainScan scan = ScanChain(frames, saved->next_offset, *saved, committed, nullptr);
  if (scan.verdict != AuditVerdict::kOk) {
    return Status::DataCorruption("audit challenge failed: " + scan.detail);
  }
  *saved = scan.end_state;
  return Status::Ok();
}

}  // namespace s4
