// Audit log (paper section 4.2.3).
//
// The drive appends one AuditRecord for every RPC it receives — reads, writes
// and administrative commands alike — including the claimed client and user.
// The log is a reserved object (kAuditLogObjectId) that only the drive front
// end may write; because of that it is not itself versioned, which saves both
// space and time. Records are buffered and packed into whole blocks; the
// block write piggybacks on normal segment writes, which is why auditing
// costs little for large-write workloads.
#ifndef S4_SRC_AUDIT_AUDIT_LOG_H_
#define S4_SRC_AUDIT_AUDIT_LOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/object/types.h"
#include "src/util/codec.h"
#include "src/util/time.h"

namespace s4 {

// RPC operation codes, used both by the RPC layer and the audit log.
// This is Table 1 of the paper.
enum class RpcOp : uint8_t {
  // Not a real op: audit marker for requests rejected before decode (bad
  // frame, bad CRC, unknown op code, oversized payload).
  kInvalid = 0,
  kCreate = 1,
  kDelete = 2,
  kRead = 3,
  kWrite = 4,
  kAppend = 5,
  kTruncate = 6,
  kGetAttr = 7,
  kSetAttr = 8,
  kGetAclByUser = 9,
  kGetAclByIndex = 10,
  kSetAcl = 11,
  kPCreate = 12,
  kPDelete = 13,
  kPList = 14,
  kPMount = 15,
  kSync = 16,
  kFlush = 17,
  kFlushObject = 18,
  kSetWindow = 19,
  // Diagnosis extension (not in Table 1): enumerate an object's versions.
  kGetVersionList = 20,
  // Batch extension (not in Table 1): a vectored frame carrying N Table-1
  // sub-requests under one transport round-trip. Each sub-op is audited
  // individually; a kBatch record marks the envelope itself.
  kBatch = 21,
  // Audit extension (not in Table 1): an external auditor challenges the
  // drive to prove its audit chain still extends a previously saved
  // (seq, offset, link) state. Admin-only; see src/audit/audit_chain.h.
  kAuditChallenge = 22,
  // RAID-style small-write offload (not in Table 1): dst = dst XOR payload at
  // the given offset, extending the object with zeros as needed. One such op
  // lets an array controller maintain XOR parity without a read round-trip;
  // versioned like kWrite so parity history stays reconstructable.
  kXorWrite = 23,
};

// Highest RpcOp value (codec bound checks).
inline constexpr uint8_t kMaxRpcOp = 23;

const char* RpcOpName(RpcOp op);

struct AuditRecord {
  SimTime time = 0;
  ClientId client = 0;
  UserId user = 0;
  RpcOp op = RpcOp::kRead;
  ObjectId object = kInvalidObjectId;
  uint64_t offset = 0;    // for read/write/append/truncate
  uint64_t length = 0;
  uint8_t result = 0;     // ErrorCode of the drive's response
  bool time_based = false;  // request used the optional time parameter

  void EncodeTo(Encoder* enc) const;
  static Result<AuditRecord> DecodeFrom(Decoder* dec);
};

// Genesis value of the audit hash chain's link digest ("S4AC").
inline constexpr uint32_t kAuditChainSeed = 0x53344143u;

// The running tail of the audit hash chain: everything needed to append the
// next frame or resume a verification scan mid-object. Persisted in the
// device checkpoint and (as the durable commit point) in the audit commit
// marker sector. See src/audit/audit_chain.h for the frame format.
struct AuditChainState {
  uint64_t next_seq = 0;     // sequence number the next frame will carry
  uint64_t next_offset = 0;  // byte offset the next frame will start at
  uint32_t link = kAuditChainSeed;  // link digest of the last frame

  bool operator==(const AuditChainState& o) const {
    return next_seq == o.next_seq && next_offset == o.next_offset && link == o.link;
  }
};

// Query predicate for reading the audit log back.
struct AuditQuery {
  SimTime from = 0;
  SimTime to = INT64_MAX;
  std::optional<ClientId> client;
  std::optional<UserId> user;
  std::optional<ObjectId> object;
  std::optional<RpcOp> op;

  bool Matches(const AuditRecord& r) const;
};

// Serialises records into the audit object's byte stream and back. The drive
// owns the underlying object I/O; this class owns framing and buffering.
//
// In chained mode (the default) every record is wrapped in a hash-chain frame
// (src/audit/audit_chain.h); hashing happens at Buffer() time so the cost
// amortises into the group-commit flush path. Legacy mode emits the bare
// record stream of pre-chain drives.
class AuditLogCodec {
 public:
  // Appends a record to the in-memory tail buffer; the caller decides when to
  // flush it into the audit object.
  void Buffer(const AuditRecord& record);

  // Takes the buffered bytes (the caller appends them to the audit object).
  Bytes TakeBuffered();
  size_t buffered_bytes() const { return buffer_.size(); }
  size_t buffered_records() const { return buffered_records_; }
  uint64_t records_buffered_total() const { return records_total_; }

  // Chained-mode control. ResetChain seeds the frame state from the last
  // durable chain position (mount/recovery); it asserts nothing is buffered.
  void set_chained(bool chained) { chained_ = chained; }
  bool chained() const { return chained_; }
  void ResetChain(const AuditChainState& state);
  const AuditChainState& chain_state() const { return chain_state_; }

  // Decodes all records from a legacy (unframed) byte stream, appending
  // matches to `out`. Only a short read at the *final* record — the remaining
  // bytes being a strict prefix of a valid record, i.e. an unflushed tail
  // after a crash — is tolerated; any other decode failure returns
  // DataCorruption naming the failing record index and byte offset. Records
  // before the failure are still appended to `out`. Chained streams are
  // decoded with the chain-aware ScanChain (audit_chain.h) instead, which
  // returns a typed clean-tail vs corrupted verdict.
  static Status DecodeAll(ByteSpan stream, const AuditQuery& query,
                          std::vector<AuditRecord>* out);

 private:
  Encoder buffer_;
  uint64_t records_total_ = 0;
  size_t buffered_records_ = 0;
  bool chained_ = true;
  AuditChainState chain_state_;
};

}  // namespace s4

#endif  // S4_SRC_AUDIT_AUDIT_LOG_H_
