// Audit log (paper section 4.2.3).
//
// The drive appends one AuditRecord for every RPC it receives — reads, writes
// and administrative commands alike — including the claimed client and user.
// The log is a reserved object (kAuditLogObjectId) that only the drive front
// end may write; because of that it is not itself versioned, which saves both
// space and time. Records are buffered and packed into whole blocks; the
// block write piggybacks on normal segment writes, which is why auditing
// costs little for large-write workloads.
#ifndef S4_SRC_AUDIT_AUDIT_LOG_H_
#define S4_SRC_AUDIT_AUDIT_LOG_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/object/types.h"
#include "src/util/codec.h"
#include "src/util/time.h"

namespace s4 {

// RPC operation codes, used both by the RPC layer and the audit log.
// This is Table 1 of the paper.
enum class RpcOp : uint8_t {
  // Not a real op: audit marker for requests rejected before decode (bad
  // frame, bad CRC, unknown op code, oversized payload).
  kInvalid = 0,
  kCreate = 1,
  kDelete = 2,
  kRead = 3,
  kWrite = 4,
  kAppend = 5,
  kTruncate = 6,
  kGetAttr = 7,
  kSetAttr = 8,
  kGetAclByUser = 9,
  kGetAclByIndex = 10,
  kSetAcl = 11,
  kPCreate = 12,
  kPDelete = 13,
  kPList = 14,
  kPMount = 15,
  kSync = 16,
  kFlush = 17,
  kFlushObject = 18,
  kSetWindow = 19,
  // Diagnosis extension (not in Table 1): enumerate an object's versions.
  kGetVersionList = 20,
  // Batch extension (not in Table 1): a vectored frame carrying N Table-1
  // sub-requests under one transport round-trip. Each sub-op is audited
  // individually; a kBatch record marks the envelope itself.
  kBatch = 21,
};

// Highest RpcOp value (codec bound checks).
inline constexpr uint8_t kMaxRpcOp = 21;

const char* RpcOpName(RpcOp op);

struct AuditRecord {
  SimTime time = 0;
  ClientId client = 0;
  UserId user = 0;
  RpcOp op = RpcOp::kRead;
  ObjectId object = kInvalidObjectId;
  uint64_t offset = 0;    // for read/write/append/truncate
  uint64_t length = 0;
  uint8_t result = 0;     // ErrorCode of the drive's response
  bool time_based = false;  // request used the optional time parameter

  void EncodeTo(Encoder* enc) const;
  static Result<AuditRecord> DecodeFrom(Decoder* dec);
};

// Query predicate for reading the audit log back.
struct AuditQuery {
  SimTime from = 0;
  SimTime to = INT64_MAX;
  std::optional<ClientId> client;
  std::optional<UserId> user;
  std::optional<ObjectId> object;
  std::optional<RpcOp> op;

  bool Matches(const AuditRecord& r) const;
};

// Serialises records into the audit object's byte stream and back. The drive
// owns the underlying object I/O; this class owns framing and buffering.
class AuditLogCodec {
 public:
  // Appends a record to the in-memory tail buffer; returns the buffer so the
  // caller can decide when to flush it into the audit object.
  void Buffer(const AuditRecord& record);

  // Takes the buffered bytes (the caller appends them to the audit object).
  Bytes TakeBuffered();
  size_t buffered_bytes() const { return buffer_.size(); }
  uint64_t records_buffered_total() const { return records_total_; }

  // Decodes all records from a byte stream (the audit object's contents),
  // appending matches to `out`. Tolerates a truncated final record (an
  // unflushed tail after a crash).
  static Status DecodeAll(ByteSpan stream, const AuditQuery& query,
                          std::vector<AuditRecord>* out);

 private:
  Encoder buffer_;
  uint64_t records_total_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_AUDIT_AUDIT_LOG_H_
