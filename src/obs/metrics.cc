#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace s4 {
namespace {

// Buckets are indexed by bit width, so bucket 0 is exactly {0} and bucket b
// covers [2^(b-1), 2^b).
int BucketIndex(int64_t sample) {
  if (sample <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(sample));
}

int64_t BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= 63) return INT64_MAX;
  return (int64_t{1} << index) - 1;
}

}  // namespace

void Histogram::Record(int64_t sample) {
  if (sample < 0) sample = 0;
  ++buckets_[BucketIndex(sample)];
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the sample we want, 1-based; ceil so p=1.0 hits the last sample.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return std::min(BucketUpperBound(b), max_);
  }
  return max_;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t MetricRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

std::string MetricRegistry::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": " << h->count()
        << ", \"sum\": " << h->sum() << ", \"min\": " << h->min()
        << ", \"max\": " << h->max() << ", \"mean\": " << h->Mean()
        << ", \"p50\": " << h->Percentile(0.50) << ", \"p90\": " << h->Percentile(0.90)
        << ", \"p99\": " << h->Percentile(0.99) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

}  // namespace s4
