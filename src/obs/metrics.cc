#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace s4 {
namespace {

// Buckets are indexed by bit width, so bucket 0 is exactly {0} and bucket b
// covers [2^(b-1), 2^b).
int BucketIndex(int64_t sample) {
  if (sample <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(sample));
}

int64_t BucketUpperBound(int index) {
  if (index <= 0) return 0;
  if (index >= 63) return INT64_MAX;
  return (int64_t{1} << index) - 1;
}

// Monotone atomic min/max without locks: retry until our sample no longer
// improves the published extremum.
void AtomicMin(std::atomic<int64_t>* slot, int64_t sample) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (sample < cur &&
         !slot->compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>* slot, int64_t sample) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (sample > cur &&
         !slot->compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(int64_t sample) {
  if (sample < 0) sample = 0;
  buckets_[BucketIndex(sample)].fetch_add(1, std::memory_order_relaxed);
  // First sample initialises min_; later samples only lower it. count_ is
  // bumped after min_ so a zero count keeps reporting min() == 0.
  if (count_.load(std::memory_order_relaxed) == 0) {
    int64_t expected = 0;
    min_.compare_exchange_strong(expected, sample, std::memory_order_relaxed);
  }
  AtomicMin(&min_, sample);
  AtomicMax(&max_, sample);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::Percentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the sample we want, 1-based; ceil so p=1.0 hits the last sample.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) return std::min(BucketUpperBound(b), max());
  }
  return max();
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  WriterLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  WriterLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  WriterLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricRegistry::FindCounter(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name) const {
  ReaderLock lock(&mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t MetricRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

std::map<std::string, const Counter*> MetricRegistry::counters() const {
  ReaderLock lock(&mu_);
  std::map<std::string, const Counter*> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.get());
  return out;
}

std::map<std::string, const Gauge*> MetricRegistry::gauges() const {
  ReaderLock lock(&mu_);
  std::map<std::string, const Gauge*> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g.get());
  return out;
}

std::map<std::string, const Histogram*> MetricRegistry::histograms() const {
  ReaderLock lock(&mu_);
  std::map<std::string, const Histogram*> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h.get());
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters()) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges()) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms()) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": " << h->count()
        << ", \"sum\": " << h->sum() << ", \"min\": " << h->min()
        << ", \"max\": " << h->max() << ", \"mean\": " << h->Mean()
        << ", \"p50\": " << h->Percentile(0.50) << ", \"p90\": " << h->Percentile(0.90)
        << ", \"p99\": " << h->Percentile(0.99) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

}  // namespace s4
