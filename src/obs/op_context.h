// OpContext: the per-request spine threaded through every layer.
//
// One OpContext is created where a request enters the system (the
// S4RpcServer boundary, or directly by S4Drive for in-process callers and
// background work like the cleaner). It carries identity (request id,
// credentials, op), the sim-time start, and accumulation slots that lower
// layers (SegmentWriter, BlockCache, BlockDevice) charge so the cost of a
// request can be attributed to the layer that incurred it.
//
// Lower layers accept `OpContext*` and treat nullptr as "untracked" — no
// layer requires a context to function.
#ifndef S4_SRC_OBS_OP_CONTEXT_H_
#define S4_SRC_OBS_OP_CONTEXT_H_

#include <cstdint>

#include "src/audit/audit_log.h"
#include "src/object/types.h"
#include "src/obs/trace.h"
#include "src/sim/sim_clock.h"
#include "src/util/time.h"

namespace s4 {

struct OpContext {
  uint64_t request_id = 0;
  Credentials creds;
  RpcOp op = RpcOp::kRead;
  SimTime start_time = 0;
  // Which shard of a multi-drive array is serving this request; -1 for a
  // standalone drive. Stamped at the S4RpcServer boundary.
  int32_t shard = -1;

  // Snapshot mode: this request runs on a shared (concurrent-reader) executor
  // lane, overlapping other readers on the same drive. Read paths must then
  // only touch immutable state — sealed segments, committed versions,
  // cache *hits* — and may not insert into or reorder any cache, defer their
  // audit records, and skip admission accounting. Set by S4Drive::MakeContext
  // from the clock's active lane; always false on the serial path.
  bool snapshot = false;

  // Wiring; null members degrade gracefully (spans become no-ops).
  SimClock* clock = nullptr;
  Tracer* tracer = nullptr;
  uint8_t span_depth = 0;  // current nesting level, maintained by ScopedSpan

  // Per-layer cost attribution, filled in as the request descends.
  SimDuration cpu_time = 0;   // drive front-end CPU charged to this request
  SimDuration disk_time = 0;  // modelled disk time (reads + writes)
  uint64_t disk_reads = 0;    // sectors read on behalf of this request
  uint64_t disk_writes = 0;   // sectors written on behalf of this request
};

// RAII span: opens at construction, records a TraceEvent at destruction.
// No-op when ctx (or its tracer/clock) is null, so deep layers can create
// spans unconditionally.
class ScopedSpan {
 public:
  ScopedSpan(OpContext* ctx, const char* name) : ctx_(ctx), name_(name) {
    if (ctx_ == nullptr || ctx_->tracer == nullptr || ctx_->clock == nullptr) {
      ctx_ = nullptr;
      return;
    }
    start_ = ctx_->clock->Now();
    depth_ = ctx_->span_depth;
    ++ctx_->span_depth;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (ctx_ == nullptr) return;
    --ctx_->span_depth;
    ctx_->tracer->Record(name_, ctx_->request_id, start_, ctx_->clock->Now() - start_,
                         depth_);
  }

 private:
  OpContext* ctx_;
  const char* name_;
  SimTime start_ = 0;
  uint8_t depth_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_OBS_OP_CONTEXT_H_
