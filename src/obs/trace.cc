#include "src/obs/trace.h"

#include <sstream>

namespace s4 {

std::string Tracer::ToChromeJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  MutexLock lock(&mu_);
  for (const TraceEvent& e : events_) {
    out << (first ? "" : ",") << "\n  {\"name\": \"" << e.name
        << "\", \"ph\": \"X\", \"ts\": " << e.start << ", \"dur\": " << e.duration
        << ", \"pid\": " << pid_ << ", \"tid\": " << e.request_id << ", \"args\": {\"depth\": "
        << static_cast<int>(e.depth) << "}}";
    first = false;
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace s4
