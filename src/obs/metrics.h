// MetricRegistry: the drive's unified observability plane.
//
// Every layer (rpc, drive, lfs, cache, sim) publishes counters, gauges, and
// sim-time latency histograms into one registry owned by the drive, instead
// of keeping disconnected ad-hoc stat structs. The legacy accessors
// (S4Drive::stats(), LoopbackTransport::stats()) remain as thin views built
// from these instruments, so existing callers keep working.
//
// Instruments are created on first use via GetCounter/GetGauge/GetHistogram
// and live as long as the registry; returned pointers are stable, so hot
// paths resolve a name once and increment through the pointer.
//
// Thread safety: instruments are updated with relaxed atomics so concurrent
// executor workers can publish without contending on a lock, and the registry
// maps are mutex-guarded so first-use creation races are safe. Reads of an
// instrument while writers are active see some valid intermediate state;
// aggregate views (ToJson, Percentile) are exact once writers have quiesced
// (executor drained), which is when benches and tests read them.
#ifndef S4_SRC_OBS_METRICS_H_
#define S4_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/util/sync.h"

namespace s4 {

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed histogram of non-negative samples (simulated microseconds).
// Bucket b holds samples whose bit width is b, i.e. [2^(b-1), 2^b). Exact
// count/sum/min/max ride along, so means are exact and only percentiles are
// quantised to a power-of-two bound. Each field is independently atomic:
// a concurrent reader may observe a sample in the bucket array before it is
// reflected in count_, but once writers quiesce all views agree.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const { return count() == 0 ? 0 : min_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  // Upper bound of the bucket containing the p-th percentile (p in [0,1]).
  int64_t Percentile(double p) const;
  uint64_t bucket(int b) const { return buckets_[b].load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
};

class MetricRegistry {
 public:
  // Creation is idempotent; returned pointers are stable for the registry's
  // lifetime. Safe to call from concurrent workers.
  Counter* GetCounter(const std::string& name) S4_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) S4_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) S4_EXCLUDES(mu_);

  // Lookup without creating; nullptr when the instrument does not exist.
  // Lookups take the reader side of the lock, so concurrent hot-path
  // resolution never serialises against other readers.
  const Counter* FindCounter(const std::string& name) const S4_EXCLUDES(mu_);
  const Histogram* FindHistogram(const std::string& name) const S4_EXCLUDES(mu_);
  // Value of a counter, 0 when it does not exist.
  uint64_t CounterValue(const std::string& name) const S4_EXCLUDES(mu_);

  // Snapshot of the instrument maps (name -> stable instrument pointer).
  // The pointers stay valid for the registry's lifetime; the snapshot itself
  // is a copy, so callers may iterate while other threads create instruments.
  std::map<std::string, const Counter*> counters() const S4_EXCLUDES(mu_);
  std::map<std::string, const Gauge*> gauges() const S4_EXCLUDES(mu_);
  std::map<std::string, const Histogram*> histograms() const S4_EXCLUDES(mu_);

  // Full dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const S4_EXCLUDES(mu_);

 private:
  // Rank kMetrics: a leaf lock — no code path acquires another lock while
  // holding it. Instrument *values* are relaxed atomics and never need it;
  // the lock only guards the name -> instrument maps.
  mutable SharedMutex mu_{LockRank::kMetrics, "MetricRegistry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ S4_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ S4_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ S4_GUARDED_BY(mu_);
};

}  // namespace s4

#endif  // S4_SRC_OBS_METRICS_H_
