// MetricRegistry: the drive's unified observability plane.
//
// Every layer (rpc, drive, lfs, cache, sim) publishes counters, gauges, and
// sim-time latency histograms into one registry owned by the drive, instead
// of keeping disconnected ad-hoc stat structs. The legacy accessors
// (S4Drive::stats(), LoopbackTransport::stats()) remain as thin views built
// from these instruments, so existing callers keep working.
//
// Instruments are created on first use via GetCounter/GetGauge/GetHistogram
// and live as long as the registry; returned pointers are stable, so hot
// paths resolve a name once and increment through the pointer.
#ifndef S4_SRC_OBS_METRICS_H_
#define S4_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace s4 {

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Log2-bucketed histogram of non-negative samples (simulated microseconds).
// Bucket b holds samples whose bit width is b, i.e. [2^(b-1), 2^b). Exact
// count/sum/min/max ride along, so means are exact and only percentiles are
// quantised to a power-of-two bound.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t sample);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;
  // Upper bound of the bucket containing the p-th percentile (p in [0,1]).
  int64_t Percentile(double p) const;
  const uint64_t* buckets() const { return buckets_; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

class MetricRegistry {
 public:
  // Creation is idempotent; returned pointers are stable for the registry's
  // lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Lookup without creating; nullptr when the instrument does not exist.
  const Counter* FindCounter(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  // Value of a counter, 0 when it does not exist.
  uint64_t CounterValue(const std::string& name) const;

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  // Full dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace s4

#endif  // S4_SRC_OBS_METRICS_H_
