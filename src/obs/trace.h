// Tracer: records spans on the sim clock and dumps them as
// chrome://tracing-compatible JSON ("traceEvents" with "ph":"X" complete
// events, one tid per request id), so a single request can be followed
// rpc -> drive -> segment writer -> block device.
//
// The tracer is deliberately dumb: spans are closed TraceEvents appended to a
// flat ring-bounded vector. Nesting is reconstructed by the viewer from
// timestamps; `depth` is kept for cheap programmatic assertions in tests.
//
// Thread safety: request-id minting is a lone atomic so concurrent workers
// never hand out duplicate ids, and the event buffer is mutex-guarded (span
// closure is rare relative to the work inside a span, so the lock is cold).
#ifndef S4_SRC_OBS_TRACE_H_
#define S4_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/sync.h"
#include "src/util/time.h"

namespace s4 {

struct TraceEvent {
  const char* name = "";       // static string; spans never own their names
  uint64_t request_id = 0;     // groups all spans of one request (tid in JSON)
  SimTime start = 0;
  SimDuration duration = 0;
  uint8_t depth = 0;           // nesting level within the request, 0 = root
};

class Tracer {
 public:
  // Bounds memory for long bench runs; overflow increments dropped() instead
  // of growing without limit.
  static constexpr size_t kMaxEvents = 1 << 16;

  uint64_t NextRequestId() {
    return last_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void Record(const char* name, uint64_t request_id, SimTime start,
              SimDuration duration, uint8_t depth) S4_EXCLUDES(mu_) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    MutexLock lock(&mu_);
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      return;
    }
    events_.push_back({name, request_id, start, duration, depth});
  }

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  // Copy, so callers may inspect while workers append. Exact once quiesced.
  std::vector<TraceEvent> events() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_;
  }
  size_t event_count() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_.size();
  }
  uint64_t dropped() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return dropped_;
  }
  void Clear() S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    events_.clear();
    dropped_ = 0;
  }

  // Process lane for the chrome JSON dump. A sharded array sets one pid per
  // shard so each drive's spans land in their own track; 1 = standalone.
  void set_pid(int pid) S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pid_ = pid;
  }
  int pid() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pid_;
  }

  // {"traceEvents": [{"name":..., "ph":"X", "ts":..., "dur":..., "pid":<pid>,
  //  "tid":<request id>}, ...]} — loadable in chrome://tracing or Perfetto.
  std::string ToChromeJson() const S4_EXCLUDES(mu_);

 private:
  // Rank kTracer: a leaf lock; span closure never calls anything that locks.
  mutable Mutex mu_{LockRank::kTracer, "Tracer"};
  std::vector<TraceEvent> events_ S4_GUARDED_BY(mu_);
  std::atomic<uint64_t> last_request_id_{0};
  uint64_t dropped_ S4_GUARDED_BY(mu_) = 0;
  std::atomic<bool> enabled_{true};
  int pid_ S4_GUARDED_BY(mu_) = 1;
};

}  // namespace s4

#endif  // S4_SRC_OBS_TRACE_H_
