#include "src/object/inode.h"

#include "src/util/crc32.h"

namespace s4 {
namespace {

constexpr uint32_t kInodeMagic = 0x5334494E;  // "S4IN"

}  // namespace

Bytes Inode::EncodeCheckpoint() const {
  Encoder enc(512);
  enc.PutU32(kInodeMagic);
  enc.PutU64(id);
  enc.PutVarint(attrs.size);
  enc.PutI64(attrs.create_time);
  enc.PutI64(attrs.modify_time);
  enc.PutLengthPrefixed(attrs.opaque);
  EncodeAcl(acl, &enc);
  enc.PutVarint(blocks.size());
  uint64_t prev_index = 0;
  DiskAddr prev_addr = 0;
  for (const auto& [index, addr] : blocks) {
    // Delta-encode: block maps are mostly dense and addresses mostly
    // ascending, so deltas keep checkpoints compact.
    enc.PutVarint(index - prev_index);
    uint64_t delta = addr >= prev_addr ? (addr - prev_addr) << 1
                                       : ((prev_addr - addr) << 1) | 1;
    enc.PutVarint(delta);
    prev_index = index;
    prev_addr = addr;
  }
  Bytes out = enc.Take();
  // Pad to whole sectors with a trailing CRC in the final 4 bytes.
  size_t body = out.size();
  size_t total = ((body + 4 + kSectorSize - 1) / kSectorSize) * kSectorSize;
  out.resize(total - 4, 0);
  uint32_t crc = Crc32c(out);
  Encoder tail;
  tail.PutU32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Result<Inode> Inode::DecodeCheckpoint(ByteSpan record) {
  if (record.size() < kSectorSize || record.size() % kSectorSize != 0) {
    return Status::DataCorruption("inode checkpoint wrong size");
  }
  uint32_t stored_crc;
  {
    Decoder crc_dec(record.subspan(record.size() - 4));
    S4_ASSIGN_OR_RETURN(stored_crc, crc_dec.U32());
  }
  if (Crc32c(record.subspan(0, record.size() - 4)) != stored_crc) {
    return Status::DataCorruption("inode checkpoint crc mismatch");
  }
  Decoder dec(record.subspan(0, record.size() - 4));
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kInodeMagic) {
    return Status::DataCorruption("inode checkpoint bad magic");
  }
  Inode ino;
  S4_ASSIGN_OR_RETURN(ino.id, dec.U64());
  S4_ASSIGN_OR_RETURN(ino.attrs.size, dec.Varint());
  S4_ASSIGN_OR_RETURN(ino.attrs.create_time, dec.I64());
  S4_ASSIGN_OR_RETURN(ino.attrs.modify_time, dec.I64());
  S4_ASSIGN_OR_RETURN(ino.attrs.opaque, dec.LengthPrefixed());
  S4_ASSIGN_OR_RETURN(ino.acl, DecodeAcl(&dec));
  S4_ASSIGN_OR_RETURN(uint64_t nblocks, dec.Varint());
  uint64_t index = 0;
  DiskAddr addr = 0;
  for (uint64_t i = 0; i < nblocks; ++i) {
    S4_ASSIGN_OR_RETURN(uint64_t dindex, dec.Varint());
    S4_ASSIGN_OR_RETURN(uint64_t daddr, dec.Varint());
    index += dindex;
    addr = (daddr & 1) ? addr - (daddr >> 1) : addr + (daddr >> 1);
    ino.blocks[index] = addr;
  }
  return ino;
}

}  // namespace s4
