#include "src/object/object_map.h"

namespace s4 {

ObjectId ObjectMap::AllocateId() { return next_id_++; }

ObjectMapEntry* ObjectMap::Find(ObjectId id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const ObjectMapEntry* ObjectMap::Find(ObjectId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

ObjectMapEntry& ObjectMap::Put(ObjectId id, ObjectMapEntry entry) {
  return entries_[id] = entry;
}

void ObjectMap::Erase(ObjectId id) { entries_.erase(id); }

void ObjectMap::ReserveThrough(ObjectId id) {
  if (id >= next_id_) {
    next_id_ = id + 1;
  }
}

void ObjectMap::EncodeTo(Encoder* enc) const {
  enc->PutU64(next_id_);
  enc->PutVarint(entries_.size());
  for (const auto& [id, e] : entries_) {
    enc->PutVarint(id);
    enc->PutI64(e.create_time);
    enc->PutI64(e.delete_time);
    enc->PutVarint(e.checkpoint_addr);
    enc->PutVarint(e.checkpoint_sectors);
    enc->PutI64(e.checkpoint_time);
    enc->PutVarint(e.journal_head);
    enc->PutI64(e.history_barrier);
    enc->PutI64(e.oldest_time);
    enc->PutVarint(e.waypoints.size());
    for (const JournalWaypoint& w : e.waypoints) {
      enc->PutI64(w.time);
      enc->PutVarint(w.addr);
    }
    enc->PutVarint(e.sectors_since_waypoint);
  }
}

Result<ObjectMap> ObjectMap::DecodeFrom(Decoder* dec) {
  ObjectMap map;
  S4_ASSIGN_OR_RETURN(map.next_id_, dec->U64());
  S4_ASSIGN_OR_RETURN(uint64_t n, dec->Varint());
  for (uint64_t i = 0; i < n; ++i) {
    S4_ASSIGN_OR_RETURN(uint64_t id, dec->Varint());
    ObjectMapEntry e;
    S4_ASSIGN_OR_RETURN(e.create_time, dec->I64());
    S4_ASSIGN_OR_RETURN(e.delete_time, dec->I64());
    S4_ASSIGN_OR_RETURN(e.checkpoint_addr, dec->Varint());
    S4_ASSIGN_OR_RETURN(uint64_t cs, dec->Varint());
    e.checkpoint_sectors = static_cast<uint32_t>(cs);
    S4_ASSIGN_OR_RETURN(e.checkpoint_time, dec->I64());
    S4_ASSIGN_OR_RETURN(e.journal_head, dec->Varint());
    S4_ASSIGN_OR_RETURN(e.history_barrier, dec->I64());
    S4_ASSIGN_OR_RETURN(e.oldest_time, dec->I64());
    S4_ASSIGN_OR_RETURN(uint64_t nwp, dec->Varint());
    e.waypoints.reserve(nwp);
    for (uint64_t w = 0; w < nwp; ++w) {
      JournalWaypoint wp;
      S4_ASSIGN_OR_RETURN(wp.time, dec->I64());
      S4_ASSIGN_OR_RETURN(wp.addr, dec->Varint());
      e.waypoints.push_back(wp);
    }
    S4_ASSIGN_OR_RETURN(uint64_t ssw, dec->Varint());
    e.sectors_since_waypoint = static_cast<uint32_t>(ssw);
    map.entries_[id] = e;
  }
  return map;
}

}  // namespace s4
