#include "src/object/types.h"

namespace s4 {

bool AclAllows(const Acl& acl, const Credentials& creds, uint8_t needed) {
  for (const auto& e : acl) {
    if ((e.user == creds.user || e.user == kEveryoneUserId) && (e.perms & needed) == needed) {
      return true;
    }
  }
  return false;
}

void EncodeAcl(const Acl& acl, Encoder* enc) {
  enc->PutVarint(acl.size());
  for (const auto& e : acl) {
    enc->PutU32(e.user);
    enc->PutU8(e.perms);
  }
}

Result<Acl> DecodeAcl(Decoder* dec) {
  S4_ASSIGN_OR_RETURN(uint64_t n, dec->Varint());
  Acl acl;
  acl.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    AclEntry e;
    S4_ASSIGN_OR_RETURN(e.user, dec->U32());
    S4_ASSIGN_OR_RETURN(e.perms, dec->U8());
    acl.push_back(e);
  }
  return acl;
}

}  // namespace s4
