// ObjectMap: the drive's authoritative index of every object it has ever
// stored that is still visible — live objects plus deleted objects whose
// versions have not yet aged out of the history pool.
//
// The map is persisted as part of the checkpoint region (together with the
// segment usage table); crash recovery restores the checkpointed map and
// rolls forward over later log chunks.
#ifndef S4_SRC_OBJECT_OBJECT_MAP_H_
#define S4_SRC_OBJECT_OBJECT_MAP_H_

#include <map>
#include <optional>

#include "src/lfs/format.h"
#include "src/object/types.h"

namespace s4 {

struct ObjectMapEntry {
  // Lifetime.
  SimTime create_time = 0;
  SimTime delete_time = 0;  // 0 while live

  // Newest on-disk full-metadata checkpoint, if any.
  DiskAddr checkpoint_addr = kNullAddr;
  uint32_t checkpoint_sectors = 0;
  SimTime checkpoint_time = 0;

  // Newest journal sector of the object's backward chain (kNullAddr if all
  // entries so far are only in memory or none exist).
  DiskAddr journal_head = kNullAddr;

  // History barrier: versions at or before this time have been reclaimed by
  // the cleaner and are no longer reconstructible. Backward reconstruction
  // never walks past it, so dangling chain pointers into reclaimed segments
  // are never followed.
  SimTime history_barrier = 0;

  // Cleaner hint (the paper's per-object "oldest time"): the time of the
  // oldest journal entry still held. The cleaner skips objects whose oldest
  // entry is inside the window.
  SimTime oldest_time = 0;

  bool live() const { return delete_time == 0; }
};

class ObjectMap {
 public:
  ObjectMap() = default;

  // Allocates the next ObjectId (never recycled).
  ObjectId AllocateId();
  // The id the next AllocateId call would return.
  ObjectId PeekNextId() const { return next_id_; }

  ObjectMapEntry* Find(ObjectId id);
  const ObjectMapEntry* Find(ObjectId id) const;
  ObjectMapEntry& Put(ObjectId id, ObjectMapEntry entry);
  void Erase(ObjectId id);

  size_t size() const { return entries_.size(); }
  const std::map<ObjectId, ObjectMapEntry>& entries() const { return entries_; }
  std::map<ObjectId, ObjectMapEntry>& mutable_entries() { return entries_; }

  // Ensures future AllocateId calls return ids above `id` (used by recovery
  // roll-forward when it encounters creates newer than the checkpoint).
  void ReserveThrough(ObjectId id);

  void EncodeTo(Encoder* enc) const;
  static Result<ObjectMap> DecodeFrom(Decoder* dec);

 private:
  ObjectId next_id_ = kFirstUserObjectId;
  std::map<ObjectId, ObjectMapEntry> entries_;
};

}  // namespace s4

#endif  // S4_SRC_OBJECT_OBJECT_MAP_H_
