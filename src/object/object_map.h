// ObjectMap: the drive's authoritative index of every object it has ever
// stored that is still visible — live objects plus deleted objects whose
// versions have not yet aged out of the history pool.
//
// The map is persisted as part of the checkpoint region (together with the
// segment usage table); crash recovery restores the checkpointed map and
// rolls forward over later log chunks.
#ifndef S4_SRC_OBJECT_OBJECT_MAP_H_
#define S4_SRC_OBJECT_OBJECT_MAP_H_

#include <map>
#include <optional>

#include "src/lfs/format.h"
#include "src/object/types.h"

namespace s4 {

// One point of the sparse back-in-time index kept per object: `addr` is a
// journal sector of the object's backward chain and `time` is the newest
// entry time inside that sector. A waypoint is appended every
// `waypoint_interval_sectors` journal sectors at write time (and rebuilt the
// same way by recovery roll-forward), so a time-bounded walk can seek close
// to its target instead of wading through the whole chain from the head.
struct JournalWaypoint {
  SimTime time = 0;
  DiskAddr addr = kNullAddr;
};

struct ObjectMapEntry {
  // Lifetime.
  SimTime create_time = 0;
  SimTime delete_time = 0;  // 0 while live

  // Newest on-disk full-metadata checkpoint, if any.
  DiskAddr checkpoint_addr = kNullAddr;
  uint32_t checkpoint_sectors = 0;
  SimTime checkpoint_time = 0;

  // Newest journal sector of the object's backward chain (kNullAddr if all
  // entries so far are only in memory or none exist).
  DiskAddr journal_head = kNullAddr;

  // History barrier: versions at or before this time have been reclaimed by
  // the cleaner and are no longer reconstructible. Backward reconstruction
  // never walks past it, so dangling chain pointers into reclaimed segments
  // are never followed.
  SimTime history_barrier = 0;

  // Cleaner hint (the paper's per-object "oldest time"): the time of the
  // oldest journal entry still held. The cleaner skips objects whose oldest
  // entry is inside the window.
  SimTime oldest_time = 0;

  // Sparse (time -> journal sector) index, oldest first, times strictly
  // ascending. Every waypoint satisfies time > history_barrier (entries at or
  // below the barrier are reclaimed, so their waypoints are pruned with them)
  // and points at a sector reachable from journal_head.
  std::vector<JournalWaypoint> waypoints;
  // Journal sectors appended since the last waypoint (persists across
  // checkpoints so the cadence survives recovery).
  uint32_t sectors_since_waypoint = 0;

  bool live() const { return delete_time == 0; }

  // Waypoint cadence bookkeeping for one appended journal sector whose newest
  // entry time is `newest_time`. `interval` == 0 disables waypoints.
  void NoteJournalSector(SimTime newest_time, DiskAddr addr, uint32_t interval) {
    if (interval == 0) {
      return;
    }
    if (++sectors_since_waypoint >= interval) {
      waypoints.push_back(JournalWaypoint{newest_time, addr});
      sectors_since_waypoint = 0;
    }
  }

  // Oldest waypoint whose time is strictly above `t`, or nullptr. Sectors
  // newer than the returned waypoint's sector hold only entries newer than
  // `t`, so a walk that needs nothing newer than `t` may start there.
  const JournalWaypoint* SeekWaypointAbove(SimTime t) const {
    for (const JournalWaypoint& w : waypoints) {
      if (w.time > t) {
        return &w;
      }
    }
    return nullptr;
  }

  // Number of waypoints at or below `t` (cost estimator for choosing between
  // forward and backward reconstruction).
  size_t WaypointsAtOrBelow(SimTime t) const {
    size_t n = 0;
    while (n < waypoints.size() && waypoints[n].time <= t) {
      ++n;
    }
    return n;
  }

  // Drops waypoints whose sectors the cleaner has reclaimed (every sector
  // whose newest entry is at or below the barrier is freed territory).
  void PruneWaypoints(SimTime barrier) {
    size_t keep = 0;
    while (keep < waypoints.size() && waypoints[keep].time <= barrier) {
      ++keep;
    }
    if (keep > 0) {
      waypoints.erase(waypoints.begin(), waypoints.begin() + keep);
    }
  }
};

class ObjectMap {
 public:
  ObjectMap() = default;

  // Allocates the next ObjectId (never recycled).
  ObjectId AllocateId();
  // The id the next AllocateId call would return.
  ObjectId PeekNextId() const { return next_id_; }

  ObjectMapEntry* Find(ObjectId id);
  const ObjectMapEntry* Find(ObjectId id) const;
  ObjectMapEntry& Put(ObjectId id, ObjectMapEntry entry);
  void Erase(ObjectId id);

  size_t size() const { return entries_.size(); }
  const std::map<ObjectId, ObjectMapEntry>& entries() const { return entries_; }
  std::map<ObjectId, ObjectMapEntry>& mutable_entries() { return entries_; }

  // Ensures future AllocateId calls return ids above `id` (used by recovery
  // roll-forward when it encounters creates newer than the checkpoint).
  void ReserveThrough(ObjectId id);

  void EncodeTo(Encoder* enc) const;
  static Result<ObjectMap> DecodeFrom(Decoder* dec);

 private:
  ObjectId next_id_ = kFirstUserObjectId;
  std::map<ObjectId, ObjectMapEntry> entries_;
};

}  // namespace s4

#endif  // S4_SRC_OBJECT_OBJECT_MAP_H_
