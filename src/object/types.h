// Core identifier and access-control types for the S4 object store.
#ifndef S4_SRC_OBJECT_TYPES_H_
#define S4_SRC_OBJECT_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/codec.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace s4 {

// Objects live in a flat namespace managed by the drive; ObjectIDs are
// assigned by the drive at create time and never recycled (deleted ids stay
// resolvable for time-based access until they age out of the history pool).
using ObjectId = uint64_t;
constexpr ObjectId kInvalidObjectId = 0;
// Reserved object: the append-only audit log (drive-written only).
constexpr ObjectId kAuditLogObjectId = 1;
// Reserved object: the named-object (partition) table.
constexpr ObjectId kPartitionTableObjectId = 2;
constexpr ObjectId kFirstUserObjectId = 16;

using UserId = uint32_t;
using ClientId = uint32_t;
// ACL wildcard matching any authenticated user.
constexpr UserId kEveryoneUserId = 0xFFFFFFFEu;

// Who issued an RPC. The drive treats these as *claims*: with an NFS-like
// front end they are unauthenticated hints; the audit log records them either
// way (paper section 3.2). The admin key models the paper's "well-protected
// cryptographic key" for administrative access.
struct Credentials {
  ClientId client = 0;
  UserId user = 0;
  uint64_t admin_key = 0;  // non-zero and matching the drive's key => admin
};

// Permission bits. kPermRecovery is the paper's Recovery flag: whether this
// user may read versions that have been pushed into the history pool.
enum Perm : uint8_t {
  kPermRead = 1 << 0,
  kPermWrite = 1 << 1,
  kPermDelete = 1 << 2,
  kPermSetAttr = 1 << 3,
  kPermSetAcl = 1 << 4,
  kPermRecovery = 1 << 5,
};
constexpr uint8_t kPermAll = kPermRead | kPermWrite | kPermDelete | kPermSetAttr | kPermSetAcl |
                             kPermRecovery;
constexpr uint8_t kPermAllNoRecovery = kPermAll & ~kPermRecovery;

struct AclEntry {
  UserId user = 0;
  uint8_t perms = 0;
};

using Acl = std::vector<AclEntry>;

// True if `creds` grants `needed` on an object with this ACL.
bool AclAllows(const Acl& acl, const Credentials& creds, uint8_t needed);

void EncodeAcl(const Acl& acl, Encoder* enc);
Result<Acl> DecodeAcl(Decoder* dec);

// S4-native object attributes plus the opaque client attribute space used by
// the NFS translation layer to store NFS attributes (paper section 4.1).
struct ObjectAttrs {
  uint64_t size = 0;
  SimTime create_time = 0;
  SimTime modify_time = 0;
  Bytes opaque;  // client file system's attribute blob
};

}  // namespace s4

#endif  // S4_SRC_OBJECT_TYPES_H_
