// Inode: the current (or reconstructed historical) metadata of one object.
//
// With journal-based metadata the inode only needs to exist in two places:
// in memory while the object is cached, and as an occasional full checkpoint
// record in the log (written when the object is evicted from the object cache
// or at sync-driven checkpoints). Between checkpoints, all metadata changes
// live solely as journal entries — that is the space saving of Figure 2.
//
// The block map is held complete (block index -> disk address). A checkpoint
// record serialises the whole map; there is no separate indirect-block chain
// to version, which is precisely what the journal-based design buys.
#ifndef S4_SRC_OBJECT_INODE_H_
#define S4_SRC_OBJECT_INODE_H_

#include <map>

#include "src/lfs/format.h"
#include "src/object/types.h"

namespace s4 {

struct Inode {
  ObjectId id = kInvalidObjectId;
  ObjectAttrs attrs;
  Acl acl;
  // Logical block index -> sector address of the 4KB data block.
  // Missing index (within size) = hole, reads as zeros.
  std::map<uint64_t, DiskAddr> blocks;

  uint64_t BlockCount() const {
    return (attrs.size + kBlockSize - 1) / kBlockSize;
  }

  DiskAddr BlockAddr(uint64_t index) const {
    auto it = blocks.find(index);
    return it == blocks.end() ? kNullAddr : it->second;
  }

  // Checkpoint record serialisation (padded to whole sectors, CRC-protected).
  Bytes EncodeCheckpoint() const;
  static Result<Inode> DecodeCheckpoint(ByteSpan record);
};

}  // namespace s4

#endif  // S4_SRC_OBJECT_INODE_H_
