// Journal-based metadata (paper section 4.2.2).
//
// Every mutation of an object appends one compact JournalEntry instead of
// materialising a fresh inode + indirect-block chain (the conventional
// versioning approach of Figure 2). Entries record both the NEW and the OLD
// state touched by the mutation:
//
//   - walking entries FORWARD (oldest to newest) from a metadata checkpoint
//     reproduces the current state (crash-recovery roll-forward), and
//   - walking entries BACKWARD (newest to oldest) from the current state
//     undoes mutations one at a time, reconstructing the object exactly as it
//     was at any requested time T inside the detection window.
#ifndef S4_SRC_JOURNAL_ENTRY_H_
#define S4_SRC_JOURNAL_ENTRY_H_

#include <cstdint>
#include <vector>

#include "src/lfs/format.h"
#include "src/util/bytes.h"
#include "src/util/codec.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace s4 {

enum class JournalEntryType : uint8_t {
  kCreate = 1,
  kWrite = 2,
  kTruncate = 3,
  kDelete = 4,
  kSetAttr = 5,
  kSetAcl = 6,
  kCheckpoint = 7,
};

// One logical block whose mapping changed: `old_addr` is where the previous
// version's data lives (kNullAddr for a hole / first write), `new_addr` where
// the new data was appended (kNullAddr when truncated away).
struct BlockDelta {
  uint64_t block_index = 0;
  DiskAddr old_addr = kNullAddr;
  DiskAddr new_addr = kNullAddr;
};

struct JournalEntry {
  JournalEntryType type = JournalEntryType::kWrite;
  SimTime time = 0;

  // kWrite / kTruncate: size transition and remapped blocks.
  uint64_t old_size = 0;
  uint64_t new_size = 0;
  std::vector<BlockDelta> blocks;

  // kSetAttr: opaque attribute blobs before/after.
  // kSetAcl: serialised ACL tables before/after.
  // kCreate: initial attr blob in `new_blob`.
  Bytes old_blob;
  Bytes new_blob;

  // kCheckpoint / kDelete: location of a full on-disk metadata checkpoint
  // (for kDelete, the object's final pre-deletion state).
  DiskAddr checkpoint_addr = kNullAddr;
  uint32_t checkpoint_sectors = 0;

  void EncodeTo(Encoder* enc) const;
  static Result<JournalEntry> DecodeFrom(Decoder* dec);

  // Encoded size in bytes (used to pack journal sectors).
  size_t EncodedSize() const;
};

}  // namespace s4

#endif  // S4_SRC_JOURNAL_ENTRY_H_
