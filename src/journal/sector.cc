#include "src/journal/sector.h"

#include "src/util/crc32.h"

namespace s4 {
namespace {

constexpr uint32_t kJournalMagic = 0x53344A4C;  // "S4JL"
// magic(4) + objid(8) + prev(8) + count(2) ... crc(4) at the end.
constexpr size_t kHeaderBytes = 4 + 8 + 8 + 2;
constexpr size_t kTrailerBytes = 4;

}  // namespace

size_t JournalSector::Capacity() { return kSectorSize - kHeaderBytes - kTrailerBytes; }

Result<Bytes> JournalSector::Encode() const {
  Encoder enc(kSectorSize);
  enc.PutU32(kJournalMagic);
  enc.PutU64(object_id);
  enc.PutU64(prev);
  enc.PutU16(static_cast<uint16_t>(entries.size()));
  for (const auto& e : entries) {
    e.EncodeTo(&enc);
  }
  Bytes out = enc.Take();
  if (out.size() + kTrailerBytes > kSectorSize) {
    return Status::Internal("journal sector overflow");
  }
  out.resize(kSectorSize - kTrailerBytes, 0);
  uint32_t crc = Crc32c(out);
  Encoder tail;
  tail.PutU32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Result<JournalSector> JournalSector::Decode(ByteSpan sector) {
  if (sector.size() != kSectorSize) {
    return Status::DataCorruption("journal sector wrong size");
  }
  uint32_t stored_crc;
  {
    Decoder crc_dec(sector.subspan(kSectorSize - kTrailerBytes));
    S4_ASSIGN_OR_RETURN(stored_crc, crc_dec.U32());
  }
  if (Crc32c(sector.subspan(0, kSectorSize - kTrailerBytes)) != stored_crc) {
    return Status::DataCorruption("journal sector crc mismatch");
  }
  Decoder dec(sector.subspan(0, kSectorSize - kTrailerBytes));
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kJournalMagic) {
    return Status::DataCorruption("journal sector bad magic");
  }
  JournalSector js;
  S4_ASSIGN_OR_RETURN(js.object_id, dec.U64());
  S4_ASSIGN_OR_RETURN(js.prev, dec.U64());
  S4_ASSIGN_OR_RETURN(uint16_t count, dec.U16());
  js.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    S4_ASSIGN_OR_RETURN(JournalEntry e, JournalEntry::DecodeFrom(&dec));
    js.entries.push_back(std::move(e));
  }
  return js;
}

Result<PackedJournal> PackJournalEntries(uint64_t object_id, DiskAddr prev_tail,
                                         const std::vector<JournalEntry>& entries) {
  PackedJournal packed;
  JournalSector current;
  current.object_id = object_id;
  current.prev = prev_tail;  // fixed up by the caller as sectors are placed
  size_t used = 0;
  for (const auto& e : entries) {
    size_t sz = e.EncodedSize();
    if (sz > JournalSector::Capacity()) {
      return Status::Internal("journal entry exceeds sector capacity; caller must split");
    }
    if (used + sz > JournalSector::Capacity()) {
      packed.sectors.push_back(std::move(current));
      current = JournalSector();
      current.object_id = object_id;
      used = 0;
    }
    current.entries.push_back(e);
    used += sz;
  }
  if (!current.entries.empty()) {
    packed.sectors.push_back(std::move(current));
  }
  return packed;
}

}  // namespace s4
