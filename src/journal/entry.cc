#include "src/journal/entry.h"

namespace s4 {

void JournalEntry::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutI64(time);
  switch (type) {
    case JournalEntryType::kWrite:
    case JournalEntryType::kTruncate:
      enc->PutVarint(old_size);
      enc->PutVarint(new_size);
      enc->PutVarint(blocks.size());
      for (const auto& b : blocks) {
        enc->PutVarint(b.block_index);
        enc->PutVarint(b.old_addr);
        enc->PutVarint(b.new_addr);
      }
      break;
    case JournalEntryType::kCreate:  // old_blob = initial ACL, new_blob = attrs
    case JournalEntryType::kSetAttr:
    case JournalEntryType::kSetAcl:
      enc->PutLengthPrefixed(old_blob);
      enc->PutLengthPrefixed(new_blob);
      break;
    case JournalEntryType::kDelete:
    case JournalEntryType::kCheckpoint:
      enc->PutVarint(checkpoint_addr);
      enc->PutVarint(checkpoint_sectors);
      break;
  }
}

Result<JournalEntry> JournalEntry::DecodeFrom(Decoder* dec) {
  JournalEntry e;
  S4_ASSIGN_OR_RETURN(uint8_t type, dec->U8());
  if (type < 1 || type > 7) {
    return Status::DataCorruption("bad journal entry type");
  }
  e.type = static_cast<JournalEntryType>(type);
  S4_ASSIGN_OR_RETURN(e.time, dec->I64());
  switch (e.type) {
    case JournalEntryType::kWrite:
    case JournalEntryType::kTruncate: {
      S4_ASSIGN_OR_RETURN(e.old_size, dec->Varint());
      S4_ASSIGN_OR_RETURN(e.new_size, dec->Varint());
      S4_ASSIGN_OR_RETURN(uint64_t n, dec->Varint());
      e.blocks.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        BlockDelta b;
        S4_ASSIGN_OR_RETURN(b.block_index, dec->Varint());
        S4_ASSIGN_OR_RETURN(b.old_addr, dec->Varint());
        S4_ASSIGN_OR_RETURN(b.new_addr, dec->Varint());
        e.blocks.push_back(b);
      }
      break;
    }
    case JournalEntryType::kCreate:
    case JournalEntryType::kSetAttr:
    case JournalEntryType::kSetAcl: {
      S4_ASSIGN_OR_RETURN(e.old_blob, dec->LengthPrefixed());
      S4_ASSIGN_OR_RETURN(e.new_blob, dec->LengthPrefixed());
      break;
    }
    case JournalEntryType::kDelete:
    case JournalEntryType::kCheckpoint: {
      S4_ASSIGN_OR_RETURN(e.checkpoint_addr, dec->Varint());
      S4_ASSIGN_OR_RETURN(uint64_t n, dec->Varint());
      e.checkpoint_sectors = static_cast<uint32_t>(n);
      break;
    }
  }
  return e;
}

size_t JournalEntry::EncodedSize() const {
  Encoder enc;
  EncodeTo(&enc);
  return enc.size();
}

}  // namespace s4
