// Audit commit marker (the chronicle's dynamic durability pointer).
//
// A pair of reserved sectors (superblock fields audit_marker_a/b) holds the
// audit chain's last durable commit point: how many bytes of the audit object
// the drive vouches for, and the chain (seq, link) at that boundary. The
// marker only advances after the segment writer has flushed the audit blocks
// it covers, alternating between the A and B sectors by generation parity so
// a torn marker write can never destroy the previous good marker.
//
// At mount the marker splits the audit object into a committed prefix (any
// chain break there is tampering or bit-rot → kCorrupted) and an uncommitted
// tail (breaks there are torn flushes → kCleanTail). Without it, every crash
// would look like tampering and every tampering like a crash.
#ifndef S4_SRC_JOURNAL_COMMIT_MARKER_H_
#define S4_SRC_JOURNAL_COMMIT_MARKER_H_

#include <cstdint>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace s4 {

// On-disk magic for an audit commit marker sector ("S4AM").
inline constexpr uint32_t kAuditMarkerMagic = 0x5334414Du;

struct AuditCommitMarker {
  uint64_t generation = 0;      // monotone; highest valid sector wins
  uint64_t committed_size = 0;  // audit object bytes vouched durable
  uint64_t chain_seq = 0;       // chain next_seq at committed_size
  uint32_t chain_link = 0;      // chain link digest at committed_size

  // Serialises into exactly one 512B sector (magic + fields + zero pad +
  // trailing CRC32C, same shape as the superblock).
  Bytes EncodeSector() const;
  static Result<AuditCommitMarker> DecodeSector(ByteSpan sector);
};

}  // namespace s4

#endif  // S4_SRC_JOURNAL_COMMIT_MARKER_H_
