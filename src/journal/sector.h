// Journal sectors (paper section 4.2.2).
//
// Packed journal entries for a single object are stored in 512B journal
// sectors. Each sector carries the address of the previous journal sector for
// the same object, forming a per-object chain that runs BACKWARD in time —
// the structure version reconstruction traverses. Entries within one sector
// are stored oldest-first.
#ifndef S4_SRC_JOURNAL_SECTOR_H_
#define S4_SRC_JOURNAL_SECTOR_H_

#include <vector>

#include "src/journal/entry.h"

namespace s4 {

struct JournalSector {
  uint64_t object_id = 0;
  DiskAddr prev = kNullAddr;  // previous (older) journal sector, 0 = none
  std::vector<JournalEntry> entries;

  // Serialises into exactly one 512B sector.
  Result<Bytes> Encode() const;
  static Result<JournalSector> Decode(ByteSpan sector);

  // Payload bytes available for entries in one sector.
  static size_t Capacity();
};

// Packs `entries` (oldest first) into as few journal sectors as possible,
// chaining them behind `prev_tail`. Returns the encoded sectors oldest-first;
// the caller appends them in order, feeding each assigned address into the
// next sector's `prev`. Entries larger than a sector must have been split by
// the caller (the drive splits large writes into multiple entries).
struct PackedJournal {
  std::vector<JournalSector> sectors;
};
Result<PackedJournal> PackJournalEntries(uint64_t object_id, DiskAddr prev_tail,
                                         const std::vector<JournalEntry>& entries);

}  // namespace s4

#endif  // S4_SRC_JOURNAL_SECTOR_H_
