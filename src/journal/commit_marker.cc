#include "src/journal/commit_marker.h"

#include "src/lfs/format.h"
#include "src/util/codec.h"
#include "src/util/crc32.h"

namespace s4 {

Bytes AuditCommitMarker::EncodeSector() const {
  Encoder enc(kSectorSize);
  enc.PutU32(kAuditMarkerMagic);
  enc.PutU64(generation);
  enc.PutU64(committed_size);
  enc.PutU64(chain_seq);
  enc.PutU32(chain_link);
  Bytes out = enc.Take();
  out.resize(kSectorSize - 4, 0);
  uint32_t crc = Crc32c(out);
  Encoder tail;
  tail.PutU32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
  return out;
}

Result<AuditCommitMarker> AuditCommitMarker::DecodeSector(ByteSpan sector) {
  if (sector.size() != kSectorSize) {
    return Status::DataCorruption("audit marker wrong size");
  }
  uint32_t stored_crc;
  {
    Decoder crc_dec(sector.subspan(kSectorSize - 4));
    S4_ASSIGN_OR_RETURN(stored_crc, crc_dec.U32());
  }
  if (Crc32c(sector.subspan(0, kSectorSize - 4)) != stored_crc) {
    return Status::DataCorruption("audit marker crc mismatch");
  }
  Decoder dec(sector.subspan(0, kSectorSize - 4));
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kAuditMarkerMagic) {
    return Status::DataCorruption("audit marker bad magic");
  }
  AuditCommitMarker m;
  S4_ASSIGN_OR_RETURN(m.generation, dec.U64());
  S4_ASSIGN_OR_RETURN(m.committed_size, dec.U64());
  S4_ASSIGN_OR_RETURN(m.chain_seq, dec.U64());
  S4_ASSIGN_OR_RETURN(m.chain_link, dec.U32());
  return m;
}

}  // namespace s4
