// BlockCache: the drive's buffer cache for log records (data blocks, journal
// sectors, inode checkpoints), keyed by disk address.
//
// Read path order in the drive: segment-writer pending buffer -> this cache
// -> disk. All freshly appended records are inserted here so immediately
// re-read data never touches the platters.
#ifndef S4_SRC_CACHE_BLOCK_CACHE_H_
#define S4_SRC_CACHE_BLOCK_CACHE_H_

#include <algorithm>
#include <functional>

#include "src/cache/lru.h"
#include "src/lfs/format.h"
#include "src/obs/metrics.h"
#include "src/obs/op_context.h"
#include "src/sim/block_device.h"

namespace s4 {

class BlockCache {
 public:
  // Exclusive upper bound for a prefetch starting at the given address;
  // returning the address itself disables prefetch there. The drive uses
  // this to confine read-ahead to sealed segments: regions that can still
  // receive appends must never be cached from a stale platter image.
  using PrefetchLimitFn = std::function<DiskAddr(DiskAddr)>;

  // When `registry` is non-null, the cache publishes cache.block.hits,
  // cache.block.misses and cache.sectors_read counters into it.
  BlockCache(BlockDevice* device, uint64_t capacity_bytes, MetricRegistry* registry = nullptr)
      : device_(device), cache_(capacity_bytes) {
    if (registry != nullptr) {
      hits_counter_ = registry->GetCounter("cache.block.hits");
      misses_counter_ = registry->GetCounter("cache.block.misses");
      sectors_read_counter_ = registry->GetCounter("cache.sectors_read");
      readahead_runs_counter_ = registry->GetCounter("cache.readahead_runs");
      readahead_sectors_counter_ = registry->GetCounter("cache.readahead_sectors");
    }
  }

  // Enables sequential read-ahead: when a miss continues a sequential run,
  // up to `readahead_sectors` are fetched with one disk command and the
  // extra slices are cached for the reads that follow (history walks and
  // ReadVersion streams walk a version's blocks in address order).
  void SetPrefetchPolicy(uint64_t readahead_sectors, PrefetchLimitFn limit_fn) {
    readahead_sectors_ = readahead_sectors;
    prefetch_limit_ = std::move(limit_fn);
  }

  // Reads `sectors` sectors at `addr`, from cache if possible. Disk time on a
  // miss is attributed to `ctx` when non-null.
  Status Read(DiskAddr addr, uint64_t sectors, Bytes* out, OpContext* ctx = nullptr) {
    if (ctx != nullptr && ctx->snapshot) {
      return SnapshotRead(addr, sectors, out, ctx);
    }
    if (Bytes* hit = cache_.Get(addr); hit != nullptr && hit->size() == sectors * kSectorSize) {
      *out = *hit;
      if (hits_counter_ != nullptr) hits_counter_->Inc();
      NoteAccess(addr, sectors);
      return Status::Ok();
    }
    if (misses_counter_ != nullptr) misses_counter_->Inc();
    uint64_t run = PrefetchRun(addr, sectors);
    if (run > sectors) {
      Bytes buf;
      S4_RETURN_IF_ERROR(device_->Read(addr, run, &buf, ctx));
      if (sectors_read_counter_ != nullptr) sectors_read_counter_->Add(run);
      if (readahead_runs_counter_ != nullptr) readahead_runs_counter_->Inc();
      if (readahead_sectors_counter_ != nullptr) {
        readahead_sectors_counter_->Add(run - sectors);
      }
      out->assign(buf.begin(), buf.begin() + sectors * kSectorSize);
      cache_.Put(addr, *out, out->size());
      // Cache the prefetched slices at the stride of the current request
      // (a sequential stream reads same-sized records). Fill only: an
      // existing entry may hold content newer than the platter.
      for (uint64_t off = sectors; off + sectors <= run; off += sectors) {
        DiskAddr slice_addr = addr + off;
        if (cache_.Peek(slice_addr) != nullptr) {
          continue;
        }
        Bytes slice(buf.begin() + off * kSectorSize,
                    buf.begin() + (off + sectors) * kSectorSize);
        cache_.Put(slice_addr, std::move(slice), sectors * kSectorSize);
      }
      NoteAccess(addr, sectors);
      return Status::Ok();
    }
    S4_RETURN_IF_ERROR(device_->Read(addr, sectors, out, ctx));
    if (sectors_read_counter_ != nullptr) sectors_read_counter_->Add(sectors);
    cache_.Put(addr, *out, out->size());
    NoteAccess(addr, sectors);
    return Status::Ok();
  }

  // Single-sector read with backward clustering: a chain's journal sectors
  // sit a handful of records apart in the log and are walked newest-to-
  // oldest, so on a miss the 32KB *ending* at `addr` is fetched with one
  // disk command and cached sector-by-sector. This is what keeps object-
  // driven cleaning from paying one full positioning delay per chain link
  // (a real cleaner streams whole segments for the same reason).
  Status ReadSectorClustered(DiskAddr addr, Bytes* out, OpContext* ctx = nullptr) {
    if (ctx != nullptr && ctx->snapshot) {
      return SnapshotRead(addr, 1, out, ctx);
    }
    if (Bytes* hit = cache_.Get(addr); hit != nullptr && hit->size() == kSectorSize) {
      *out = *hit;
      if (hits_counter_ != nullptr) hits_counter_->Inc();
      return Status::Ok();
    }
    if (misses_counter_ != nullptr) misses_counter_->Inc();
    DiskAddr start = addr >= 7 ? addr - 7 : 0;
    Bytes run;
    S4_RETURN_IF_ERROR(device_->Read(start, addr - start + 1, &run, ctx));
    if (sectors_read_counter_ != nullptr) sectors_read_counter_->Add(addr - start + 1);
    for (DiskAddr s = start; s <= addr; ++s) {
      Bytes slice(run.begin() + (s - start) * kSectorSize,
                  run.begin() + (s - start + 1) * kSectorSize);
      if (s == addr) {
        *out = slice;
      }
      // Fill only: an existing entry may hold content newer than the
      // platter (data appended but not yet flushed).
      if (cache_.Peek(s) == nullptr) {
        cache_.Put(s, std::move(slice), kSectorSize);
      }
    }
    return Status::Ok();
  }

  // Inserts freshly written data (no disk I/O).
  void Insert(DiskAddr addr, ByteSpan data) {
    cache_.Put(addr, Bytes(data.begin(), data.end()), data.size());
  }

  void Invalidate(DiskAddr addr) { cache_.Remove(addr); }
  void DropAll() { cache_.Clear(); }

  uint64_t hits() const { return cache_.hits(); }
  uint64_t misses() const { return cache_.misses(); }

 private:
  // Read path for snapshot-mode contexts (concurrent reader lanes): serve
  // cache *hits* via Peek — no LRU reorder, no insert, no run detector, no
  // prefetch — and go straight to disk on a miss. The cache structure is
  // never mutated, so overlapped snapshot readers need no lock here; all
  // counters they touch are atomic.
  Status SnapshotRead(DiskAddr addr, uint64_t sectors, Bytes* out, OpContext* ctx) {
    if (const Bytes* hit = cache_.Peek(addr);
        hit != nullptr && hit->size() == sectors * kSectorSize) {
      *out = *hit;
      if (hits_counter_ != nullptr) hits_counter_->Inc();
      return Status::Ok();
    }
    if (misses_counter_ != nullptr) misses_counter_->Inc();
    S4_RETURN_IF_ERROR(device_->Read(addr, sectors, out, ctx));
    if (sectors_read_counter_ != nullptr) sectors_read_counter_->Add(sectors);
    return Status::Ok();
  }

  // Sequential-run detector: one prior adjacent access arms prefetch.
  void NoteAccess(DiskAddr addr, uint64_t sectors) { next_expected_ = addr + sectors; }

  // Sectors to fetch for a miss of `sectors` at `addr`: more than asked only
  // when the access continues a sequential run and the policy allows reading
  // ahead (the run is clamped to the policy limit, the device end, and a
  // whole multiple of the request size so slices stay request-aligned).
  uint64_t PrefetchRun(DiskAddr addr, uint64_t sectors) const {
    if (sectors == 0 || readahead_sectors_ <= sectors || !prefetch_limit_ ||
        next_expected_ == 0 || addr != next_expected_) {
      return sectors;
    }
    uint64_t limit = prefetch_limit_(addr);
    limit = std::min<uint64_t>(limit, device_->sector_count());
    if (limit <= addr + sectors) {
      return sectors;
    }
    uint64_t run = std::min<uint64_t>(readahead_sectors_, limit - addr);
    run -= run % sectors;
    return std::max<uint64_t>(run, sectors);
  }

  BlockDevice* device_;
  LruCache<DiskAddr, Bytes> cache_;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* sectors_read_counter_ = nullptr;
  Counter* readahead_runs_counter_ = nullptr;
  Counter* readahead_sectors_counter_ = nullptr;
  uint64_t readahead_sectors_ = 0;
  PrefetchLimitFn prefetch_limit_;
  DiskAddr next_expected_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_CACHE_BLOCK_CACHE_H_
