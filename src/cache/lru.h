// Generic byte-budgeted LRU cache used for both the block buffer cache and
// the object (inode) cache.
#ifndef S4_SRC_CACHE_LRU_H_
#define S4_SRC_CACHE_LRU_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/util/check.h"

namespace s4 {

// Key -> Value cache with per-entry cost accounting and LRU eviction.
// EvictFn is called for each evicted entry (e.g. to checkpoint a dirty
// inode). Insertion of an entry larger than the budget is still accepted:
// the cache then holds just that entry.
template <typename Key, typename Value>
class LruCache {
 public:
  using EvictFn = std::function<void(const Key&, Value&&)>;

  explicit LruCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  void set_evict_fn(EvictFn fn) { evict_fn_ = std::move(fn); }
  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  size_t entry_count() const { return index_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Returns a pointer to the cached value and marks it most-recently-used,
  // or nullptr. The pointer is invalidated by any mutation of the cache.
  Value* Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  // Peek without touching recency or hit statistics.
  Value* Peek(const Key& key) {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  // Inserts or replaces. `cost` is the entry's budget charge. Replacing an
  // existing key hands the displaced value to the eviction callback — it may
  // be dirty state whose side effect (e.g. checkpointing) must not be lost.
  void Put(const Key& key, Value value, uint64_t cost) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& e = *it->second;
      Value displaced = std::move(e.value);
      e.value = std::move(value);
      used_ += cost;
      used_ -= e.cost;
      e.cost = cost;
      order_.splice(order_.begin(), order_, it->second);
      if (evict_fn_) {
        evict_fn_(key, std::move(displaced));
      }
      EvictToFit();
      return;
    }
    order_.push_front(Entry{key, std::move(value), cost});
    index_[key] = order_.begin();
    used_ += cost;
    EvictToFit();
  }

  // Removes without invoking the eviction callback. Returns true if present.
  bool Remove(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    used_ -= it->second->cost;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  // Evicts everything through the callback (used at unmount/sync).
  void Clear() {
    while (!order_.empty()) {
      EvictOne();
    }
  }

  // Visits entries from most to least recently used. Visitor may not mutate
  // the cache.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& e : order_) {
      fn(e.key, e.value);
    }
  }

 private:
  struct Entry {
    Key key;
    Value value;
    uint64_t cost;
  };

  void EvictOne() {
    S4_CHECK(!order_.empty());
    auto& victim = order_.back();
    Key key = victim.key;
    Value value = std::move(victim.value);
    used_ -= victim.cost;
    index_.erase(victim.key);
    order_.pop_back();
    if (evict_fn_) {
      evict_fn_(key, std::move(value));
    }
  }

  void EvictToFit() {
    // Keep at least the newest entry even if it alone exceeds the budget.
    while (used_ > capacity_ && order_.size() > 1) {
      EvictOne();
    }
  }

  EvictFn evict_fn_;
  uint64_t capacity_;
  uint64_t used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<Entry> order_;
  std::unordered_map<Key, typename std::list<Entry>::iterator> index_;
};

}  // namespace s4

#endif  // S4_SRC_CACHE_LRU_H_
