#include "src/sim/block_device.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/check.h"

namespace s4 {

BlockDevice::BlockDevice(uint64_t sector_count, SimClock* clock, DiskModel model)
    : sector_count_(sector_count), clock_(clock), model_(model) {
  S4_CHECK(clock != nullptr);
  S4_CHECK(sector_count > 0);
  chunks_.resize((sector_count * kSectorSize + kChunkBytes - 1) / kChunkBytes);
}

uint8_t* BlockDevice::ChunkFor(uint64_t byte_offset, bool allocate) {
  uint64_t idx = byte_offset / kChunkBytes;
  if (!chunks_[idx]) {
    if (!allocate) {
      return nullptr;
    }
    chunks_[idx] = std::make_unique<uint8_t[]>(kChunkBytes);
    std::memset(chunks_[idx].get(), 0, kChunkBytes);
  }
  return chunks_[idx].get();
}

void BlockDevice::CopyOut(uint64_t byte_offset, uint64_t len, uint8_t* dst) {
  while (len > 0) {
    uint64_t within = byte_offset % kChunkBytes;
    uint64_t take = std::min<uint64_t>(len, kChunkBytes - within);
    const uint8_t* chunk = ChunkFor(byte_offset, /*allocate=*/false);
    if (chunk == nullptr) {
      std::memset(dst, 0, take);
    } else {
      std::memcpy(dst, chunk + within, take);
    }
    byte_offset += take;
    dst += take;
    len -= take;
  }
}

void BlockDevice::CopyIn(uint64_t byte_offset, ByteSpan src) {
  const uint8_t* p = src.data();
  uint64_t len = src.size();
  while (len > 0) {
    uint64_t within = byte_offset % kChunkBytes;
    uint64_t take = std::min<uint64_t>(len, kChunkBytes - within);
    uint8_t* chunk = ChunkFor(byte_offset, /*allocate=*/true);
    std::memcpy(chunk + within, p, take);
    byte_offset += take;
    p += take;
    len -= take;
  }
}

SimDuration BlockDevice::PositioningCost(uint64_t lba) {
  if (lba == head_lba_) {
    // Sequential: no seek. If the host paused, the platter rotated on and
    // the sector must come around again.
    bool idle = clock_->Now() - last_io_end_ > model_.sequential_idle_gap;
    return idle ? model_.average_rotation : 0;
  }
  ++stats_.seeks;
  // Distance-scaled seek: short hops cost track-to-track, the average-length
  // hop costs roughly average_seek. A sqrt profile approximates measured
  // drives well enough for relative comparisons.
  double frac = static_cast<double>(lba > head_lba_ ? lba - head_lba_ : head_lba_ - lba) /
                static_cast<double>(sector_count_);
  double seek = static_cast<double>(model_.track_to_track_seek) +
                static_cast<double>(model_.average_seek - model_.track_to_track_seek) *
                    std::sqrt(frac) * 1.6;
  return static_cast<SimDuration>(seek) + model_.average_rotation;
}

Status BlockDevice::Read(uint64_t lba, uint64_t count, Bytes* out) {
  if (lba + count > sector_count_ || lba + count < lba) {
    return Status::InvalidArgument("read beyond device");
  }
  SimDuration cost = model_.command_overhead + PositioningCost(lba) + model_.TransferCost(count);
  clock_->Advance(cost);
  stats_.busy_time += cost;
  ++stats_.reads;
  stats_.sectors_read += count;
  head_lba_ = lba + count;
  last_io_end_ = clock_->Now();
  out->resize(count * kSectorSize);
  CopyOut(lba * kSectorSize, count * kSectorSize, out->data());
  return Status::Ok();
}

Status BlockDevice::Write(uint64_t lba, ByteSpan data) {
  if (data.size() % kSectorSize != 0) {
    return Status::InvalidArgument("write not sector aligned");
  }
  uint64_t count = data.size() / kSectorSize;
  if (lba + count > sector_count_ || lba + count < lba) {
    return Status::InvalidArgument("write beyond device");
  }
  SimDuration cost = model_.command_overhead + PositioningCost(lba) + model_.TransferCost(count);
  clock_->Advance(cost);
  stats_.busy_time += cost;
  ++stats_.writes;
  stats_.sectors_written += count;
  head_lba_ = lba + count;
  last_io_end_ = clock_->Now();
  CopyIn(lba * kSectorSize, data);
  return Status::Ok();
}

void BlockDevice::SimulateCrashTornSector(uint64_t torn_lba) {
  if (torn_lba < sector_count_) {
    // Fill with a recognisable garbage pattern; checksums must catch this.
    Bytes garbage(kSectorSize, 0xDE);
    CopyIn(torn_lba * kSectorSize, garbage);
  }
}

}  // namespace s4
