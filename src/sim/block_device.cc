#include "src/sim/block_device.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/check.h"

namespace s4 {

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

void FaultInjector::SchedulePowerCut(uint64_t nth_write, uint64_t persist_sectors,
                                     uint64_t corrupt_sectors) {
  S4_CHECK(nth_write > 0);
  writes_until_cut_ = nth_write;
  cut_persist_sectors_ = persist_sectors;
  cut_corrupt_sectors_ = corrupt_sectors;
}

void FaultInjector::ScheduleBitRot(uint64_t lba, uint32_t byte_offset, uint8_t mask) {
  S4_CHECK(byte_offset < kSectorSize);
  rot_.emplace(lba, RotMark{byte_offset, mask});
}

void FaultInjector::ScheduleReadError(uint64_t lba, uint32_t count) {
  read_errors_[lba] += count;
}

void FaultInjector::Reset() {
  powered_off_ = false;
  power_cut_fired_ = false;
  writes_until_cut_ = 0;
  cut_persist_sectors_ = 0;
  cut_corrupt_sectors_ = 0;
  rot_.clear();
  read_errors_.clear();
}

FaultInjector::WriteFault FaultInjector::OnWrite() {
  WriteFault fault;
  if (writes_until_cut_ == 0) {
    return fault;
  }
  if (--writes_until_cut_ == 0) {
    fault.power_cut = true;
    fault.persist_sectors = cut_persist_sectors_;
    fault.corrupt_sectors = cut_corrupt_sectors_;
    powered_off_ = true;
    power_cut_fired_ = true;
  }
  return fault;
}

bool FaultInjector::OnRead(uint64_t lba, uint64_t count) {
  auto it = read_errors_.lower_bound(lba);
  if (it == read_errors_.end() || it->first >= lba + count) {
    return false;
  }
  if (--it->second == 0) {
    read_errors_.erase(it);
  }
  return true;
}

std::vector<std::pair<uint64_t, FaultInjector::RotMark>> FaultInjector::TakeRot(
    uint64_t lba, uint64_t count) {
  std::vector<std::pair<uint64_t, RotMark>> hits;
  auto it = rot_.lower_bound(lba);
  while (it != rot_.end() && it->first < lba + count) {
    hits.emplace_back(it->first, it->second);
    it = rot_.erase(it);
  }
  return hits;
}

// ---------------------------------------------------------------------------
// BlockDevice
// ---------------------------------------------------------------------------

BlockDevice::BlockDevice(uint64_t sector_count, SimClock* clock, DiskModel model)
    : sector_count_(sector_count), clock_(clock), model_(model) {
  S4_CHECK(clock != nullptr);
  S4_CHECK(sector_count > 0);
  chunks_.resize((sector_count * kSectorSize + kChunkBytes - 1) / kChunkBytes);
}

uint8_t* BlockDevice::ChunkFor(uint64_t byte_offset, bool allocate) {
  uint64_t idx = byte_offset / kChunkBytes;
  if (!chunks_[idx]) {
    if (!allocate) {
      return nullptr;
    }
    chunks_[idx] = std::make_unique<uint8_t[]>(kChunkBytes);
    std::memset(chunks_[idx].get(), 0, kChunkBytes);
  }
  return chunks_[idx].get();
}

void BlockDevice::CopyOut(uint64_t byte_offset, uint64_t len, uint8_t* dst) {
  while (len > 0) {
    uint64_t within = byte_offset % kChunkBytes;
    uint64_t take = std::min<uint64_t>(len, kChunkBytes - within);
    const uint8_t* chunk = ChunkFor(byte_offset, /*allocate=*/false);
    if (chunk == nullptr) {
      std::memset(dst, 0, take);
    } else {
      std::memcpy(dst, chunk + within, take);
    }
    byte_offset += take;
    dst += take;
    len -= take;
  }
}

void BlockDevice::CopyIn(uint64_t byte_offset, ByteSpan src) {
  const uint8_t* p = src.data();
  uint64_t len = src.size();
  while (len > 0) {
    uint64_t within = byte_offset % kChunkBytes;
    uint64_t take = std::min<uint64_t>(len, kChunkBytes - within);
    uint8_t* chunk = ChunkFor(byte_offset, /*allocate=*/true);
    std::memcpy(chunk + within, p, take);
    byte_offset += take;
    p += take;
    len -= take;
  }
}

SimDuration BlockDevice::PositioningCost(uint64_t lba, SimTime start) {
  if (lba == head_lba_) {
    // Sequential: no seek. If the host paused, the platter rotated on and
    // the sector must come around again. `start` is when this command
    // actually reaches the arm (it may have queued behind other lanes).
    bool idle = start - last_io_end_ > model_.sequential_idle_gap;
    return idle ? model_.average_rotation : 0;
  }
  ++stats_.seeks;
  // Distance-scaled seek: short hops cost track-to-track, the average-length
  // hop costs roughly average_seek. A sqrt profile approximates measured
  // drives well enough for relative comparisons.
  double frac = static_cast<double>(lba > head_lba_ ? lba - head_lba_ : head_lba_ - lba) /
                static_cast<double>(sector_count_);
  double seek = static_cast<double>(model_.track_to_track_seek) +
                static_cast<double>(model_.average_seek - model_.track_to_track_seek) *
                    std::sqrt(frac) * 1.6;
  return static_cast<SimDuration>(seek) + model_.average_rotation;
}

Status BlockDevice::Read(uint64_t lba, uint64_t count, Bytes* out, OpContext* ctx) {
  ScopedSpan span(ctx, "disk.read");
  MutexLock lock(&mu_);
  if (lba + count > sector_count_ || lba + count < lba) {
    return Status::InvalidArgument("read beyond device");
  }
  if (injector_ != nullptr && injector_->powered_off()) {
    return Status::Unavailable("device is powered off");
  }
  // The command starts when both the issuing lane is ready and the arm is
  // free; on the serial path free_until_ never exceeds Now() and start is
  // exactly the current time.
  SimTime start = std::max(clock_->Now(), free_until_);
  SimDuration cost =
      model_.command_overhead + PositioningCost(lba, start) + model_.TransferCost(count);
  SimTime end = start + cost;
  clock_->AdvanceTo(end);
  free_until_ = end;
  stats_.busy_time += cost;
  ++stats_.reads;
  stats_.sectors_read += count;
  if (ctx != nullptr) {
    ctx->disk_time += cost;
    ctx->disk_reads += count;
  }
  head_lba_ = lba + count;
  last_io_end_ = end;
  if (injector_ != nullptr) {
    if (injector_->OnRead(lba, count)) {
      return Status::Unavailable("transient read error");
    }
    // Bit-rot is damage to the platter: apply it to the media, then read.
    for (const auto& [rot_lba, mark] : injector_->TakeRot(lba, count)) {
      uint8_t* chunk = ChunkFor(rot_lba * kSectorSize + mark.byte_offset, /*allocate=*/true);
      chunk[(rot_lba * kSectorSize + mark.byte_offset) % kChunkBytes] ^= mark.mask;
    }
  }
  out->resize(count * kSectorSize);
  CopyOut(lba * kSectorSize, count * kSectorSize, out->data());
  return Status::Ok();
}

Status BlockDevice::Write(uint64_t lba, ByteSpan data, OpContext* ctx) {
  ScopedSpan span(ctx, "disk.write");
  MutexLock lock(&mu_);
  if (data.size() % kSectorSize != 0) {
    return Status::InvalidArgument("write not sector aligned");
  }
  uint64_t count = data.size() / kSectorSize;
  if (lba + count > sector_count_ || lba + count < lba) {
    return Status::InvalidArgument("write beyond device");
  }
  if (injector_ != nullptr && injector_->powered_off()) {
    return Status::Unavailable("device is powered off");
  }
  if (injector_ != nullptr) {
    FaultInjector::WriteFault fault = injector_->OnWrite();
    if (fault.power_cut) {
      // Power failed mid-command. A prefix of the sectors landed intact, a
      // further run was in flight (torn: garbage on the media), the rest
      // never left the buffer. Charge timing for what reached the platter.
      uint64_t persist = std::min<uint64_t>(fault.persist_sectors, count);
      uint64_t corrupt = std::min<uint64_t>(fault.corrupt_sectors, count - persist);
      SimTime start = std::max(clock_->Now(), free_until_);
      SimDuration cost = model_.command_overhead + PositioningCost(lba, start) +
                         model_.TransferCost(persist + corrupt);
      SimTime end = start + cost;
      clock_->AdvanceTo(end);
      free_until_ = end;
      stats_.busy_time += cost;
      ++stats_.writes;
      stats_.sectors_written += persist;
      if (ctx != nullptr) {
        ctx->disk_time += cost;
        ctx->disk_writes += persist;
      }
      head_lba_ = lba + persist + corrupt;
      last_io_end_ = end;
      if (persist > 0) {
        CopyIn(lba * kSectorSize, data.first(persist * kSectorSize));
      }
      if (corrupt > 0) {
        CorruptSectorsLocked(lba + persist, corrupt);
      }
      return Status::Unavailable("power lost during write");
    }
  }
  SimTime start = std::max(clock_->Now(), free_until_);
  SimDuration cost =
      model_.command_overhead + PositioningCost(lba, start) + model_.TransferCost(count);
  SimTime end = start + cost;
  clock_->AdvanceTo(end);
  free_until_ = end;
  stats_.busy_time += cost;
  ++stats_.writes;
  stats_.sectors_written += count;
  if (ctx != nullptr) {
    ctx->disk_time += cost;
    ctx->disk_writes += count;
  }
  head_lba_ = lba + count;
  last_io_end_ = end;
  CopyIn(lba * kSectorSize, data);
  return Status::Ok();
}

void BlockDevice::CorruptSectors(uint64_t lba, uint64_t count) {
  MutexLock lock(&mu_);
  CorruptSectorsLocked(lba, count);
}

void BlockDevice::CorruptSectorsLocked(uint64_t lba, uint64_t count) {
  for (uint64_t i = 0; i < count && lba + i < sector_count_; ++i) {
    // Fill with a recognisable garbage pattern; checksums must catch this.
    Bytes garbage(kSectorSize, 0xDE);
    CopyIn((lba + i) * kSectorSize, garbage);
  }
}

}  // namespace s4
