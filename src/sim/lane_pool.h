// RunOnLanes: fan independent tasks across SimClock lanes.
//
// A bounded worker pool for parallel phases outside the request path (mount's
// dirty-segment scan is the first user). It mirrors the lane discipline of
// src/exec's DriveExecutor — each worker binds a private clock lane starting
// at the caller's Now(), shared hardware still serialises through the
// device's busy timeline, and when all workers join the global clock absorbs
// the makespan (max over lane ends, not the sum). It lives in src/sim rather
// than src/exec because the drive layer sits *below* the executor in the
// include DAG: the executor submits work to drives, while this pool is a leaf
// utility a drive may call during recovery.
#ifndef S4_SRC_SIM_LANE_POOL_H_
#define S4_SRC_SIM_LANE_POOL_H_

#include <functional>
#include <vector>

#include "src/sim/sim_clock.h"
#include "src/util/status.h"

namespace s4 {

// Runs every task, fanning them across up to `workers` concurrent lanes with
// static round-robin assignment (task i runs on worker i % W, in order), so
// which task runs where never depends on host scheduling. Tasks must be
// independent: they may share a thread-safe device but must write only their
// own slots. With workers <= 1 (or a single task) everything runs inline on
// the caller's thread — the serial path, charging the global clock directly.
// Returns the first non-OK status any task produced; later tasks still run.
Status RunOnLanes(SimClock* clock, int workers,
                  const std::vector<std::function<Status()>>& tasks);

}  // namespace s4

#endif  // S4_SRC_SIM_LANE_POOL_H_
