#include "src/sim/lane_pool.h"

#include <algorithm>
#include <thread>

namespace s4 {

Status RunOnLanes(SimClock* clock, int workers,
                  const std::vector<std::function<Status()>>& tasks) {
  if (tasks.empty()) {
    return Status::Ok();
  }
  int w = std::min<int>({workers, static_cast<int>(tasks.size()),
                         SimClock::kMaxLanes - 1});
  std::vector<Status> results(tasks.size());
  if (w <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      results[i] = tasks[i]();
    }
  } else {
    SimTime start = clock->Now();
    std::vector<SimTime> lane_ends(static_cast<size_t>(w), start);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(w));
    for (int k = 0; k < w; ++k) {
      threads.emplace_back([&, k] {
        // Lane ids are 1-based; id 0 is the unbound serial path.
        SimClock::Lane lane(clock, k + 1, start, /*shared=*/false);
        for (size_t i = static_cast<size_t>(k); i < tasks.size();
             i += static_cast<size_t>(w)) {
          results[i] = tasks[i]();
        }
        lane_ends[static_cast<size_t>(k)] = clock->Now();
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    for (SimTime end : lane_ends) {
      clock->AbsorbLane(end);
    }
  }
  for (const Status& s : results) {
    S4_RETURN_IF_ERROR(s);
  }
  return Status::Ok();
}

}  // namespace s4
