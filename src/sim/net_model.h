// NetModel: cost model for the client<->drive network.
//
// Substitutes the paper's 100Mb switched Ethernet: a fixed per-message
// latency plus a bandwidth term. Used by the RPC loopback transport.
#ifndef S4_SRC_SIM_NET_MODEL_H_
#define S4_SRC_SIM_NET_MODEL_H_

#include <atomic>
#include <cstdint>

#include "src/util/time.h"

namespace s4 {

struct NetModel {
  SimDuration per_message_latency = 60;  // one-way wire+stack latency (us)
  double bandwidth_mb_s = 12.5;          // 100 Mb/s
  // Protocol processing (marshalling, syscalls, context switches) per
  // message, summed over sender and receiver — 2000-era CPUs.
  SimDuration per_message_cpu = 220;

  SimDuration TransferCost(uint64_t bytes) const {
    double seconds = static_cast<double>(bytes) / (bandwidth_mb_s * 1e6);
    return per_message_latency + per_message_cpu +
           static_cast<SimDuration>(seconds * kSecond);
  }
};

// Traffic counters from the client's point of view: requests are sent,
// responses are received. A plain value type so callers can snapshot and
// diff it.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
};

// The live accumulator an endpoint updates: relaxed atomics so concurrent
// executor workers pushing frames through one endpoint never race. Readers
// take a plain NetStats snapshot (exact once the executor has drained).
// Deliberately lock-free (audited for the lock-discipline pass): each field
// is an independent monotone counter with no cross-field invariant, so
// per-field atomicity is already the full consistency contract and a mutex
// would only add a hot-path serialisation point.
struct AtomicNetStats {
  std::atomic<uint64_t> messages_sent{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> messages_received{0};
  std::atomic<uint64_t> bytes_received{0};

  NetStats Snapshot() const {
    NetStats s;
    s.messages_sent = messages_sent.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    s.messages_received = messages_received.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace s4

#endif  // S4_SRC_SIM_NET_MODEL_H_
