// NetModel: cost model for the client<->drive network.
//
// Substitutes the paper's 100Mb switched Ethernet: a fixed per-message
// latency plus a bandwidth term. Used by the RPC loopback transport.
#ifndef S4_SRC_SIM_NET_MODEL_H_
#define S4_SRC_SIM_NET_MODEL_H_

#include <cstdint>

#include "src/util/time.h"

namespace s4 {

struct NetModel {
  SimDuration per_message_latency = 60;  // one-way wire+stack latency (us)
  double bandwidth_mb_s = 12.5;          // 100 Mb/s
  // Protocol processing (marshalling, syscalls, context switches) per
  // message, summed over sender and receiver — 2000-era CPUs.
  SimDuration per_message_cpu = 220;

  SimDuration TransferCost(uint64_t bytes) const {
    double seconds = static_cast<double>(bytes) / (bandwidth_mb_s * 1e6);
    return per_message_latency + per_message_cpu +
           static_cast<SimDuration>(seconds * kSecond);
  }
};

// Traffic counters from the client's point of view: requests are sent,
// responses are received.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
};

}  // namespace s4

#endif  // S4_SRC_SIM_NET_MODEL_H_
