// BlockDevice: a sector-addressable store with a disk-arm timing model.
//
// This is the substitute for the paper's 9GB 10,000RPM Seagate Cheetah drive
// (see DESIGN.md section 2). Sectors live in memory; every read/write charges
// simulated time to the shared SimClock according to DiskModel, so the
// relative cost of random vs. sequential I/O — which drives every figure in
// the evaluation — is faithfully reproduced.
#ifndef S4_SRC_SIM_BLOCK_DEVICE_H_
#define S4_SRC_SIM_BLOCK_DEVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/obs/op_context.h"
#include "src/sim/sim_clock.h"
#include "src/util/bytes.h"
#include "src/util/status.h"
#include "src/util/sync.h"
#include "src/util/time.h"

namespace s4 {

constexpr uint32_t kSectorSize = 512;

// Programmable media-fault schedule, attachable to a BlockDevice. Models the
// adversarial failure modes crash recovery must survive:
//
//   * power cut during the Nth write command (with an optional torn tail:
//     a prefix of the write's sectors persists, a further run is corrupted,
//     the remainder never reaches the platter),
//   * silent bit-rot on chosen LBAs (flips persist on the media and are only
//     observable through checksums),
//   * transient read errors (the command fails, a retry succeeds).
//
// The injector is passive state; the owning BlockDevice consults it on every
// command. One injector drives at most one device.
class FaultInjector {
 public:
  // Cuts power during the `nth` write command issued from now (1-based;
  // nth=1 is the very next write). Of that write, the first `persist_sectors`
  // land intact, the next `corrupt_sectors` are torn (filled with garbage),
  // and the rest never reaches the media. The cutting write and every
  // command after it fail with kUnavailable until PowerOn().
  void SchedulePowerCut(uint64_t nth_write, uint64_t persist_sectors = 0,
                        uint64_t corrupt_sectors = 0);

  // Silent bit-rot: XORs `mask` into byte `byte_offset` of sector `lba` the
  // next time that sector passes under the head. The damage is applied to
  // the media, so it persists across reads and power cycles.
  void ScheduleBitRot(uint64_t lba, uint32_t byte_offset = 0, uint8_t mask = 0x01);

  // The next `count` read commands touching `lba` fail with kUnavailable;
  // after that, reads succeed again (a transient/recovered medium error).
  void ScheduleReadError(uint64_t lba, uint32_t count = 1);

  // Restores power after a cut. Platter contents (including any torn write
  // damage) are untouched; only the ability to issue commands returns.
  void PowerOn() { powered_off_ = false; }
  bool powered_off() const { return powered_off_; }
  // True once a scheduled power cut has fired.
  bool power_cut_fired() const { return power_cut_fired_; }
  // Write commands remaining before a scheduled cut fires (0 = none armed).
  uint64_t writes_until_cut() const { return writes_until_cut_; }

  // Clears all scheduled faults and restores power.
  void Reset();

 private:
  friend class BlockDevice;

  struct WriteFault {
    bool power_cut = false;
    uint64_t persist_sectors = 0;
    uint64_t corrupt_sectors = 0;
  };
  struct RotMark {
    uint32_t byte_offset;
    uint8_t mask;
  };

  // Device-side hooks: called once per command, in command order.
  WriteFault OnWrite();
  bool OnRead(uint64_t lba, uint64_t count);  // true = fail this read
  // Takes the pending rot marks overlapping [lba, lba+count).
  std::vector<std::pair<uint64_t, RotMark>> TakeRot(uint64_t lba, uint64_t count);

  bool powered_off_ = false;
  bool power_cut_fired_ = false;
  uint64_t writes_until_cut_ = 0;  // 0 = no cut armed
  uint64_t cut_persist_sectors_ = 0;
  uint64_t cut_corrupt_sectors_ = 0;
  std::multimap<uint64_t, RotMark> rot_;          // lba -> pending rot
  std::map<uint64_t, uint32_t> read_errors_;      // lba -> remaining failures
};

// Timing parameters, defaulted to the Seagate Cheetah 10K (ST39102) class
// drive used in the paper's testbed.
struct DiskModel {
  SimDuration average_seek = 5200;       // 5.2 ms average seek
  SimDuration track_to_track_seek = 600; // short seeks
  SimDuration average_rotation = 3000;   // 10,000 RPM -> 3 ms half rotation
  double media_rate_mb_s = 25.0;         // sustained media transfer
  SimDuration command_overhead = 100;    // controller/firmware per command
  // A "sequential" access issued after the platter has spun past the head
  // still pays a rotational delay; gaps longer than this charge it.
  SimDuration sequential_idle_gap = 150;

  // Cost of transferring n sectors once the head is positioned.
  SimDuration TransferCost(uint64_t sectors) const {
    double bytes = static_cast<double>(sectors) * kSectorSize;
    double seconds = bytes / (media_rate_mb_s * 1e6);
    return static_cast<SimDuration>(seconds * kSecond);
  }
};

struct DiskStats {
  uint64_t reads = 0;            // read commands
  uint64_t writes = 0;           // write commands
  uint64_t sectors_read = 0;
  uint64_t sectors_written = 0;
  uint64_t seeks = 0;            // commands that required repositioning
  SimDuration busy_time = 0;     // total simulated time spent in the disk

  DiskStats operator-(const DiskStats& rhs) const {
    DiskStats d;
    d.reads = reads - rhs.reads;
    d.writes = writes - rhs.writes;
    d.sectors_read = sectors_read - rhs.sectors_read;
    d.sectors_written = sectors_written - rhs.sectors_written;
    d.seeks = seeks - rhs.seeks;
    d.busy_time = busy_time - rhs.busy_time;
    return d;
  }
};

class BlockDevice {
 public:
  // Creates a device with `sector_count` zeroed sectors. The clock is shared
  // with the rest of the simulation and must outlive the device.
  BlockDevice(uint64_t sector_count, SimClock* clock, DiskModel model = DiskModel());

  uint64_t sector_count() const { return sector_count_; }
  uint64_t capacity_bytes() const { return sector_count_ * kSectorSize; }

  // Reads `count` sectors starting at `lba` into out (resized to fit).
  // When `ctx` is non-null, the command's modelled time and sector counts are
  // attributed to that request and a "disk.read"/"disk.write" span recorded.
  //
  // Commands are internally serialised (there is one disk arm): concurrent
  // executor lanes queue on the device's busy timeline, so a command issued
  // while the arm is busy starts when the arm frees up, exactly as real
  // hardware would. On the serial path the timeline never runs ahead of the
  // clock and the timing is identical to the pre-concurrency model.
  Status Read(uint64_t lba, uint64_t count, Bytes* out, OpContext* ctx = nullptr)
      S4_EXCLUDES(mu_);
  // Writes data (must be a whole number of sectors) starting at `lba`.
  Status Write(uint64_t lba, ByteSpan data, OpContext* ctx = nullptr) S4_EXCLUDES(mu_);

  DiskStats stats() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  // Simulated instant until which the arm is busy serving already-issued
  // commands. A command issued with a lane clock behind this queues (and is
  // charged the wait), so schedulers use it as the drive's device frontier.
  // Deliberately a mutex acquisition, not a lock-free read: the executor
  // calls it from dispatch (rank kExecutor -> kDevice is the sanctioned
  // nesting) and a stale frontier would mis-schedule, not just mis-report.
  SimTime busy_until() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return free_until_;
  }
  void ResetStats() S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = DiskStats();
  }

  // Attaches a fault schedule (nullptr detaches). The injector must outlive
  // the device or be detached first. Swapping injectors while commands are
  // in flight is a programming error; the lock still makes it a data-race-
  // free one.
  void set_fault_injector(FaultInjector* injector) S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    injector_ = injector;
  }
  FaultInjector* fault_injector() const S4_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return injector_;
  }

  // Directly overwrites `count` sectors starting at `lba` with a
  // recognisable garbage pattern — media damage with no timing cost, for
  // tests that corrupt state out-of-band.
  void CorruptSectors(uint64_t lba, uint64_t count = 1) S4_EXCLUDES(mu_);

  // Simulates power loss: in-memory sector contents persist (they model the
  // platters), but the caller's caches are gone. Provided for crash tests.
  // Optionally corrupts the `torn_lba` sector to model a torn write.
  // Thin wrapper kept for older tests; new code should use a FaultInjector
  // or CorruptSectors directly.
  void SimulateCrashTornSector(uint64_t torn_lba) { CorruptSectors(torn_lba, 1); }

 private:
  // Backing store is allocated lazily in 1MB chunks so multi-GB simulated
  // disks only commit memory for sectors actually written.
  static constexpr uint64_t kChunkBytes = 1 << 20;

  SimDuration PositioningCost(uint64_t lba, SimTime start) S4_REQUIRES(mu_);
  uint8_t* ChunkFor(uint64_t byte_offset, bool allocate) S4_REQUIRES(mu_);
  void CopyOut(uint64_t byte_offset, uint64_t len, uint8_t* dst) S4_REQUIRES(mu_);
  void CopyIn(uint64_t byte_offset, ByteSpan src) S4_REQUIRES(mu_);
  // CorruptSectors body; Write calls it with the command lock already held.
  void CorruptSectorsLocked(uint64_t lba, uint64_t count) S4_REQUIRES(mu_);

  uint64_t sector_count_;
  SimClock* clock_;
  DiskModel model_;
  // One command at a time: guards media contents, fault state, stats, and the
  // arm's busy timeline against concurrent executor lanes. Rank kDevice: the
  // executor's dispatch lock (kExecutor) is the only lock ever held when a
  // command arrives, via busy_until() from FindWork.
  mutable Mutex mu_{LockRank::kDevice, "BlockDevice"};
  // The injector is passive state consulted and mutated under the command
  // lock; both the pointer and the pointee are covered by mu_.
  FaultInjector* injector_ S4_GUARDED_BY(mu_) S4_PT_GUARDED_BY(mu_) = nullptr;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_ S4_GUARDED_BY(mu_);
  // LBA following the last transfer.
  uint64_t head_lba_ S4_GUARDED_BY(mu_) = 0;
  // When the previous command completed.
  SimTime last_io_end_ S4_GUARDED_BY(mu_) = 0;
  // The arm is busy until this instant.
  SimTime free_until_ S4_GUARDED_BY(mu_) = 0;
  DiskStats stats_ S4_GUARDED_BY(mu_);
};

}  // namespace s4

#endif  // S4_SRC_SIM_BLOCK_DEVICE_H_
