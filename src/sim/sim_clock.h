// SimClock: the single source of time for the whole system.
//
// Devices advance the clock by the modelled cost of each operation; workloads
// may also advance it to represent client think time (e.g. compilation in the
// SSH-build benchmark). Because no component reads wall-clock time, every
// benchmark run is deterministic.
#ifndef S4_SRC_SIM_SIM_CLOCK_H_
#define S4_SRC_SIM_SIM_CLOCK_H_

#include "src/util/check.h"
#include "src/util/time.h"

namespace s4 {

class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime Now() const { return now_; }

  void Advance(SimDuration d) {
    S4_CHECK(d >= 0);
    now_ += d;
  }

  // Jump directly to a later point (used by capacity models that simulate
  // multi-day windows).
  void AdvanceTo(SimTime t) {
    S4_CHECK(t >= now_);
    now_ = t;
  }

 private:
  SimTime now_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_SIM_SIM_CLOCK_H_
