// SimClock: the single source of time for the whole system.
//
// Devices advance the clock by the modelled cost of each operation; workloads
// may also advance it to represent client think time (e.g. compilation in the
// SSH-build benchmark). Because no component reads wall-clock time, every
// benchmark run is deterministic.
//
// Concurrency lanes: an executor worker may bind its thread to a private
// *lane* of the clock (SimClock::Lane). While bound, Now()/Advance()/
// AdvanceTo() act on the lane's own timestamp instead of the global one, so
// overlapping requests each accumulate their own simulated time — CPU and
// transfer costs that genuinely overlap are charged in parallel rather than
// serialised. Shared resources (the disk arm, via BlockDevice's busy
// timeline) still serialise lanes where the hardware would. When no lane is
// bound — every pre-existing single-threaded path — the clock behaves exactly
// as before, reading and advancing the global now_.
#ifndef S4_SRC_SIM_SIM_CLOCK_H_
#define S4_SRC_SIM_SIM_CLOCK_H_

#include <atomic>

#include "src/util/check.h"
#include "src/util/time.h"

namespace s4 {

class SimClock {
 public:
  // Lane ids are small dense integers so per-lane state elsewhere (e.g. the
  // drive's active-context slots) can be plain arrays indexed by lane. Id 0
  // is reserved for "no lane" (the serial path); workers use 1..kMaxLanes-1.
  static constexpr int kMaxLanes = 17;

  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime Now() const {
    if (const Lane* lane = ActiveLane(); lane != nullptr) return lane->now_;
    return now_.load(std::memory_order_relaxed);
  }

  void Advance(SimDuration d) {
    S4_CHECK(d >= 0);
    if (Lane* lane = ActiveLane(); lane != nullptr) {
      lane->now_ += d;
      return;
    }
    now_.fetch_add(d, std::memory_order_relaxed);
  }

  // Jump directly to a later point (used by capacity models that simulate
  // multi-day windows). On a lane, "later" means later than the lane's own
  // time; device timelines use this to park a lane behind a busy resource.
  void AdvanceTo(SimTime t) {
    if (Lane* lane = ActiveLane(); lane != nullptr) {
      S4_CHECK(t >= lane->now_);
      lane->now_ = t;
      return;
    }
    S4_CHECK(t >= now_.load(std::memory_order_relaxed));
    now_.store(t, std::memory_order_relaxed);
  }

  // RAII binding of the calling thread to a private lane of this clock.
  // The lane's timestamp starts at `start` and lives in the Lane object;
  // the executor reads it back after the task and folds it into the global
  // clock (AbsorbLane) once all lanes drain.
  class Lane {
   public:
    Lane(SimClock* clock, int id, SimTime start, bool shared)
        : clock_(clock), prev_(tls_lane_), id_(id), now_(start), shared_(shared) {
      S4_CHECK(id > 0 && id < kMaxLanes);
      tls_lane_ = this;
    }
    ~Lane() { tls_lane_ = prev_; }

    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    int id() const { return id_; }
    SimTime now() const { return now_; }
    void set_now(SimTime t) { now_ = t; }
    bool shared() const { return shared_; }

   private:
    friend class SimClock;
    SimClock* clock_;
    Lane* prev_;
    int id_;
    SimTime now_;
    bool shared_;
  };

  // Lane id the calling thread is bound to on *this* clock; 0 when unbound.
  int ActiveLaneId() const {
    const Lane* lane = ActiveLane();
    return lane == nullptr ? 0 : lane->id_;
  }

  // Whether the calling thread's active lane was opened in shared
  // (concurrent-reader) mode. The drive uses this to pick snapshot read
  // paths that never mutate shared state.
  bool ActiveLaneIsShared() const {
    const Lane* lane = ActiveLane();
    return lane != nullptr && lane->shared_;
  }

  // Fold a finished lane's end time into the global clock: simulated time
  // after a parallel epoch is the max over the lanes (the makespan), not the
  // sum. Called by the executor with lanes quiesced or from its own lock.
  void AbsorbLane(SimTime end) {
    SimTime cur = now_.load(std::memory_order_relaxed);
    while (end > cur &&
           !now_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
    }
  }

 private:
  Lane* ActiveLane() const {
    Lane* lane = tls_lane_;
    return (lane != nullptr && lane->clock_ == this) ? lane : nullptr;
  }

  // Deliberately lock-free (audited for the lock-discipline pass): the lane
  // pointer is thread-local (each worker reads/writes only its own), and the
  // global clock is a single monotone word advanced by CAS in AbsorbLane —
  // a mutex here would serialise every Charge() on the hot path. Cross-lane
  // ordering comes from the executor's dispatch lock, not from this word.
  static thread_local Lane* tls_lane_;

  std::atomic<SimTime> now_{0};
};

}  // namespace s4

#endif  // S4_SRC_SIM_SIM_CLOCK_H_
