#include "src/sim/sim_clock.h"

namespace s4 {

thread_local SimClock::Lane* SimClock::tls_lane_ = nullptr;

}  // namespace s4
