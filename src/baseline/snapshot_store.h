// SnapshotStore: the "versioning vs. snapshots" comparator of section 6.
//
// Models a copy-on-write snapshotting store (WAFL/Petal-style): object state
// is shared between snapshots by reference; a snapshot captures whatever is
// current at that instant. The ablation question is *coverage*: a file that
// is created and deleted between two snapshots (an intruder's exploit tool),
// or an intermediate version that is overwritten before the next snapshot
// fires, is simply never captured — whereas S4's comprehensive versioning is
// the limiting case of snapshot-interval -> 0 and captures everything.
//
// This is a semantic model (object granularity, in-memory tables) rather
// than a disk layout: the ablation measures what survives, not I/O timing.
#ifndef S4_SRC_BASELINE_SNAPSHOT_STORE_H_
#define S4_SRC_BASELINE_SNAPSHOT_STORE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/sim/sim_clock.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace s4 {

class SnapshotStore {
 public:
  explicit SnapshotStore(SimClock* clock) : clock_(clock) {}

  uint64_t CreateObject();
  Status Write(uint64_t id, Bytes content);
  Status Delete(uint64_t id);
  Result<Bytes> ReadCurrent(uint64_t id) const;

  // Captures the current state. Returns the snapshot's index.
  size_t TakeSnapshot();
  size_t snapshot_count() const { return snapshots_.size(); }
  SimTime snapshot_time(size_t index) const { return snapshots_[index].time; }

  // Reads an object as of snapshot `index`; NotFound if it did not exist
  // in that snapshot (e.g. created and deleted between snapshots).
  Result<Bytes> ReadAtSnapshot(size_t index, uint64_t id) const;

  // True if any snapshot holds this exact content for the object.
  bool AnySnapshotHolds(uint64_t id, const Bytes& content) const;

 private:
  using Table = std::map<uint64_t, std::shared_ptr<const Bytes>>;
  struct Snapshot {
    SimTime time;
    Table table;
  };

  SimClock* clock_;
  uint64_t next_id_ = 1;
  Table current_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace s4

#endif  // S4_SRC_BASELINE_SNAPSHOT_STORE_H_
