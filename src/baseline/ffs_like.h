// FfsLikeServer: an in-place-update file server standing in for the paper's
// FreeBSD-FFS and Linux-ext2 NFS servers (Figures 3 and 4).
//
// Classic UNIX FFS layout on the shared simulated disk, with cylinder
// groups: the disk is divided into groups, each holding its own inode
// sub-table, allocation bitmap, and data blocks. New files' inodes are
// placed in their parent directory's group and file data in the inode's
// group, so the metadata writes of one operation are short seeks apart —
// the locality optimisation that keeps real FFS competitive.
//
// Directories use the same record-stream format as the S4 overlay so the
// two systems do comparable logical work per operation; the difference under
// test is purely in-place random updates vs. S4's log-structured writes.
//
// `sync_metadata` selects the two personalities:
//   true  -> FFS-like / NFSv2-correct: inode, indirect-block, and directory
//            updates are written synchronously before the op returns
//            (allocation bitmaps are write-behind, as in real FFS).
//   false -> Linux-2.2-ext2-with-"sync"-mount-like: data writes are
//            synchronous but metadata updates are buffered and written back
//            lazily — the paper attributes the Linux server's anomalously
//            fast SSH-configure phase to exactly this flaw.
#ifndef S4_SRC_BASELINE_FFS_LIKE_H_
#define S4_SRC_BASELINE_FFS_LIKE_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cache/lru.h"
#include "src/fs/dir_format.h"
#include "src/fs/file_system.h"
#include "src/lfs/format.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"

namespace s4 {

struct FfsOptions {
  uint32_t max_inodes = 65536;
  uint32_t cylinder_groups = 64;
  bool sync_metadata = true;
  uint64_t buffer_cache_bytes = 8ull << 20;
};

struct FfsStats {
  uint64_t metadata_writes = 0;  // synchronous metadata I/Os issued
  uint64_t data_writes = 0;
  uint64_t lazy_flushes = 0;     // metadata writes deferred to FlushMetadata
};

class FfsLikeServer : public FileSystemApi {
 public:
  static Result<std::unique_ptr<FfsLikeServer>> Format(BlockDevice* device, SimClock* clock,
                                                       FfsOptions options);

  Result<FileHandle> Root() override { return kRootInode; }
  Result<FileHandle> Lookup(FileHandle dir, const std::string& name) override;
  Result<FileHandle> CreateFile(FileHandle dir, const std::string& name,
                                uint32_t mode) override;
  Result<FileHandle> Mkdir(FileHandle dir, const std::string& name, uint32_t mode) override;
  Status Remove(FileHandle dir, const std::string& name) override;
  Status Rmdir(FileHandle dir, const std::string& name) override;
  Status Rename(FileHandle from_dir, const std::string& from_name, FileHandle to_dir,
                const std::string& to_name) override;
  Result<Bytes> ReadFile(FileHandle file, uint64_t offset, uint64_t length) override;
  Status WriteFile(FileHandle file, uint64_t offset, ByteSpan data) override;
  Result<FileAttr> GetAttr(FileHandle file) override;
  Status SetSize(FileHandle file, uint64_t size) override;
  Result<std::vector<DirEntry>> ReadDir(FileHandle dir) override;
  Result<FileHandle> Symlink(FileHandle dir, const std::string& name,
                             const std::string& target) override;
  Result<std::string> ReadLink(FileHandle link) override;

  // Writes back all deferred metadata (bitmaps; plus everything else in the
  // async personality — its bdflush equivalent).
  Status FlushMetadata();

  const FfsStats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kRootInode = 1;
  static constexpr uint32_t kInodeSize = 256;  // on-disk bytes per inode

  struct Inode {
    bool used = false;
    FileType type = FileType::kFile;
    uint32_t mode = 0644;
    uint32_t uid = 0;
    uint64_t size = 0;
    SimTime ctime = 0;
    SimTime mtime = 0;
    uint64_t direct[12] = {0};
    uint64_t single_indirect = 0;
    uint64_t double_indirect = 0;
  };

  FfsLikeServer(BlockDevice* device, SimClock* clock, FfsOptions options);

  // --- cylinder-group geometry ---
  uint32_t GroupOfInode(uint32_t ino) const { return ino / inodes_per_group_; }
  uint32_t GroupOfBlock(uint64_t blk) const {
    return static_cast<uint32_t>((blk - 1) / blocks_per_group_);
  }
  uint64_t GroupStart(uint32_t group) const {
    return 1 + static_cast<uint64_t>(group) * group_sectors_;
  }
  DiskAddr InodeSector(uint32_t ino) const;
  DiskAddr BlockSector(uint64_t blk) const;
  DiskAddr BitmapSector(uint64_t blk) const;

  // --- allocation (group-hinted) ---
  Result<uint32_t> AllocInode(uint32_t hint_group);
  void FreeInode(uint32_t ino);
  Status WriteInodeMeta(uint32_t ino);
  Result<uint64_t> AllocBlock(uint32_t hint_group);
  void FreeBlock(uint64_t blk);
  void MarkBitmapDirty(uint64_t blk);

  // --- block mapping through indirect blocks ---
  Result<uint64_t> GetFileBlock(Inode* ino, uint32_t group, uint64_t index, bool allocate);
  Status FreeFileBlocks(Inode* ino, uint64_t from_index);
  Result<Bytes> ReadIndirect(uint64_t blk);
  Status WriteIndirect(uint64_t blk, const Bytes& content);

  // --- data I/O ---
  Result<Bytes> ReadBlock(uint64_t blk);
  Status WriteBlock(uint64_t blk, ByteSpan content);

  // --- directories / files ---
  Result<ParsedDir*> LoadDir(FileHandle dir);
  Status AppendDirRecord(FileHandle dir, const DirRecord& record);
  Status MaybeCompactDir(FileHandle dir);
  // `sync_inode=false` defers the inode update (directory mtime/size on an
  // append — real FFS piggybacks those).
  Status WriteFileRaw(uint32_t ino_num, uint64_t offset, ByteSpan data, bool sync_inode);
  Result<Bytes> ReadFileRaw(uint32_t ino_num, uint64_t offset, uint64_t length);
  Result<FileHandle> CreateNode(FileHandle dir, const std::string& name, FileType type,
                                uint32_t mode, const std::string& symlink_target);
  Status RemoveNode(FileHandle dir, const std::string& name, bool want_dir);

  Result<Inode*> GetInode(uint32_t ino);

  BlockDevice* device_;
  SimClock* clock_;
  FfsOptions options_;

  // Geometry.
  uint32_t groups_ = 0;
  uint64_t group_sectors_ = 0;        // span of one group
  uint32_t inodes_per_group_ = 0;
  uint64_t inode_sectors_per_group_ = 0;
  uint64_t bitmap_sectors_per_group_ = 0;
  uint64_t blocks_per_group_ = 0;
  uint64_t data_block_count_ = 0;

  std::vector<Inode> inodes_;
  std::vector<bool> block_bitmap_;
  std::vector<uint64_t> group_rotor_;  // per-group allocation rotor
  std::unique_ptr<LruCache<uint64_t, Bytes>> buffer_cache_;
  std::unordered_map<FileHandle, ParsedDir> dir_cache_;
  // Deferred metadata: sector-level cost entries (bitmaps, async inodes).
  std::unordered_set<uint64_t> dirty_meta_sectors_;
  // Async-dirty blocks whose authoritative content is pinned in memory
  // until FlushMetadata (indirect + directory blocks).
  std::unordered_map<uint64_t, Bytes> pinned_meta_;

  FfsStats stats_;
};

}  // namespace s4

#endif  // S4_SRC_BASELINE_FFS_LIKE_H_
