// ConventionalVersioningStore: the comparator of Figure 2.
//
// A conventional versioning system (Elephant-style) cannot overwrite any
// metadata either, so every update to a file must materialise a fresh copy
// of the full metadata path: the new data block(s), a new copy of every
// indirect block on the path, a new inode, and an inode-log entry recording
// the new inode's identity. For a write into a doubly-indirected region that
// is four new metadata blocks per 4KB of data — the "up to 4x growth in disk
// usage" the paper measured, and the problem journal-based metadata solves.
//
// The store runs on the shared simulated disk with an append-only allocator
// (versions are never overwritten) and tracks data vs. metadata bytes so the
// bench can reproduce the comparison.
#ifndef S4_SRC_BASELINE_CONVENTIONAL_VERSIONING_H_
#define S4_SRC_BASELINE_CONVENTIONAL_VERSIONING_H_

#include <map>
#include <memory>

#include "src/lfs/format.h"
#include "src/sim/block_device.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"

namespace s4 {

struct ConventionalStats {
  uint64_t data_bytes = 0;       // new data blocks
  uint64_t metadata_bytes = 0;   // new indirect blocks + inodes + log entries
  uint64_t versions = 0;
};

class ConventionalVersioningStore {
 public:
  ConventionalVersioningStore(BlockDevice* device, SimClock* clock);

  Result<uint64_t> CreateObject();
  // Writes data, materialising the full metadata chain for this version.
  Status Write(uint64_t id, uint64_t offset, ByteSpan data);
  Result<Bytes> Read(uint64_t id, uint64_t offset, uint64_t length);

  const ConventionalStats& stats() const { return stats_; }
  uint64_t BytesConsumed() const { return next_sector_ * kSectorSize; }

 private:
  static constexpr uint64_t kDirect = 12;
  static constexpr uint64_t kPtrs = kBlockSize / 8;

  struct Object {
    uint64_t size = 0;
    // In-memory mirror of the current version's block map; the on-disk
    // copies exist at the addresses the allocator handed out.
    std::map<uint64_t, DiskAddr> blocks;
  };

  Result<DiskAddr> AppendRaw(ByteSpan data);

  BlockDevice* device_;
  SimClock* clock_;
  uint64_t next_sector_ = 1;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Object> objects_;
  ConventionalStats stats_;
};

}  // namespace s4

#endif  // S4_SRC_BASELINE_CONVENTIONAL_VERSIONING_H_
