#include "src/baseline/snapshot_store.h"

namespace s4 {

uint64_t SnapshotStore::CreateObject() {
  uint64_t id = next_id_++;
  current_[id] = std::make_shared<const Bytes>();
  return id;
}

Status SnapshotStore::Write(uint64_t id, Bytes content) {
  auto it = current_.find(id);
  if (it == current_.end()) {
    return Status::NotFound("no such object");
  }
  // Copy-on-write: snapshots holding the old shared_ptr are unaffected.
  it->second = std::make_shared<const Bytes>(std::move(content));
  return Status::Ok();
}

Status SnapshotStore::Delete(uint64_t id) {
  if (current_.erase(id) == 0) {
    return Status::NotFound("no such object");
  }
  return Status::Ok();
}

Result<Bytes> SnapshotStore::ReadCurrent(uint64_t id) const {
  auto it = current_.find(id);
  if (it == current_.end()) {
    return Status::NotFound("no such object");
  }
  return *it->second;
}

size_t SnapshotStore::TakeSnapshot() {
  snapshots_.push_back(Snapshot{clock_->Now(), current_});
  return snapshots_.size() - 1;
}

Result<Bytes> SnapshotStore::ReadAtSnapshot(size_t index, uint64_t id) const {
  if (index >= snapshots_.size()) {
    return Status::InvalidArgument("no such snapshot");
  }
  const Table& table = snapshots_[index].table;
  auto it = table.find(id);
  if (it == table.end()) {
    return Status::NotFound("object not present in snapshot");
  }
  return *it->second;
}

bool SnapshotStore::AnySnapshotHolds(uint64_t id, const Bytes& content) const {
  for (const auto& snap : snapshots_) {
    auto it = snap.table.find(id);
    if (it != snap.table.end() && *it->second == content) {
      return true;
    }
  }
  return false;
}

}  // namespace s4
