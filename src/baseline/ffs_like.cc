#include "src/baseline/ffs_like.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace s4 {
namespace {

constexpr uint64_t kPtrsPerBlock = kBlockSize / 8;
constexpr uint64_t kDirectBlocks = 12;

}  // namespace

FfsLikeServer::FfsLikeServer(BlockDevice* device, SimClock* clock, FfsOptions options)
    : device_(device), clock_(clock), options_(options) {}

Result<std::unique_ptr<FfsLikeServer>> FfsLikeServer::Format(BlockDevice* device,
                                                             SimClock* clock,
                                                             FfsOptions options) {
  auto fs = std::unique_ptr<FfsLikeServer>(new FfsLikeServer(device, clock, options));
  fs->groups_ = options.cylinder_groups;
  fs->group_sectors_ = (device->sector_count() - 1) / fs->groups_;
  fs->inodes_per_group_ = options.max_inodes / fs->groups_;
  if (fs->inodes_per_group_ == 0) {
    return Status::InvalidArgument("too few inodes per group");
  }
  fs->inode_sectors_per_group_ =
      (static_cast<uint64_t>(fs->inodes_per_group_) * kInodeSize + kSectorSize - 1) /
      kSectorSize;

  // Per group: [inode table][bitmap][data blocks].
  // bitmap: one bit per block, one sector covers 4096 blocks.
  uint64_t overhead_guess = fs->inode_sectors_per_group_ + 8;
  if (fs->group_sectors_ <= overhead_guess + kSectorsPerBlock) {
    return Status::InvalidArgument("device too small");
  }
  uint64_t data_sectors = fs->group_sectors_ - overhead_guess;
  fs->blocks_per_group_ = data_sectors / kSectorsPerBlock;
  fs->bitmap_sectors_per_group_ = (fs->blocks_per_group_ + 8 * kSectorSize - 1) /
                                  (8 * kSectorSize);
  // Recompute with the real bitmap size.
  data_sectors = fs->group_sectors_ - fs->inode_sectors_per_group_ -
                 fs->bitmap_sectors_per_group_;
  fs->blocks_per_group_ = data_sectors / kSectorsPerBlock;
  fs->data_block_count_ = fs->blocks_per_group_ * fs->groups_;

  fs->inodes_.resize(options.max_inodes);
  fs->block_bitmap_.assign(fs->data_block_count_ + 1, false);
  fs->block_bitmap_[0] = true;  // block numbers start at 1
  fs->group_rotor_.assign(fs->groups_, 0);
  fs->buffer_cache_ = std::make_unique<LruCache<uint64_t, Bytes>>(options.buffer_cache_bytes);

  Inode& root = fs->inodes_[kRootInode];
  root.used = true;
  root.type = FileType::kDirectory;
  root.mode = 0755;
  root.ctime = root.mtime = clock->Now();
  S4_RETURN_IF_ERROR(fs->WriteInodeMeta(kRootInode));
  return fs;
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

DiskAddr FfsLikeServer::InodeSector(uint32_t ino) const {
  uint32_t group = GroupOfInode(ino);
  uint32_t within = ino % inodes_per_group_;
  return GroupStart(group) + static_cast<uint64_t>(within) * kInodeSize / kSectorSize;
}

DiskAddr FfsLikeServer::BitmapSector(uint64_t blk) const {
  uint32_t group = GroupOfBlock(blk);
  uint64_t within = (blk - 1) % blocks_per_group_;
  return GroupStart(group) + inode_sectors_per_group_ + within / (8 * kSectorSize);
}

DiskAddr FfsLikeServer::BlockSector(uint64_t blk) const {
  uint32_t group = GroupOfBlock(blk);
  uint64_t within = (blk - 1) % blocks_per_group_;
  return GroupStart(group) + inode_sectors_per_group_ + bitmap_sectors_per_group_ +
         within * kSectorsPerBlock;
}

Result<FfsLikeServer::Inode*> FfsLikeServer::GetInode(uint32_t ino) {
  if (ino >= inodes_.size() || !inodes_[ino].used) {
    return Status::NotFound("no such inode");
  }
  return &inodes_[ino];
}

// ---------------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------------

Result<uint32_t> FfsLikeServer::AllocInode(uint32_t hint_group) {
  for (uint32_t probe = 0; probe < groups_; ++probe) {
    uint32_t group = (hint_group + probe) % groups_;
    uint32_t base = group * inodes_per_group_;
    for (uint32_t i = 0; i < inodes_per_group_; ++i) {
      uint32_t ino = base + i;
      if (ino <= kRootInode) {
        continue;
      }
      if (!inodes_[ino].used) {
        inodes_[ino] = Inode();
        inodes_[ino].used = true;
        return ino;
      }
    }
  }
  return Status::OutOfSpace("inode table full");
}

void FfsLikeServer::FreeInode(uint32_t ino) { inodes_[ino] = Inode(); }

Status FfsLikeServer::WriteInodeMeta(uint32_t ino) {
  uint64_t sector = InodeSector(ino);
  if (!options_.sync_metadata) {
    dirty_meta_sectors_.insert(sector);
    return Status::Ok();
  }
  // The in-memory table is authoritative; the device write models the I/O
  // cost and persistence of the containing inode sector.
  Bytes raw(kSectorSize, 0);
  ++stats_.metadata_writes;
  return device_->Write(sector, raw);
}

Result<uint64_t> FfsLikeServer::AllocBlock(uint32_t hint_group) {
  for (uint32_t probe = 0; probe < groups_; ++probe) {
    uint32_t group = (hint_group + probe) % groups_;
    uint64_t base = static_cast<uint64_t>(group) * blocks_per_group_ + 1;
    uint64_t& rotor = group_rotor_[group];
    for (uint64_t i = 0; i < blocks_per_group_; ++i) {
      uint64_t blk = base + (rotor + i) % blocks_per_group_;
      if (!block_bitmap_[blk]) {
        block_bitmap_[blk] = true;
        rotor = (rotor + i + 1) % blocks_per_group_;
        MarkBitmapDirty(blk);
        return blk;
      }
    }
  }
  return Status::OutOfSpace("no free blocks");
}

void FfsLikeServer::FreeBlock(uint64_t blk) {
  block_bitmap_[blk] = false;
  pinned_meta_.erase(blk);
  MarkBitmapDirty(blk);
}

void FfsLikeServer::MarkBitmapDirty(uint64_t blk) {
  // FFS writes allocation bitmaps behind (fsck reconstructs them), so both
  // personalities defer these.
  dirty_meta_sectors_.insert(BitmapSector(blk));
}

// ---------------------------------------------------------------------------
// Block I/O
// ---------------------------------------------------------------------------

Result<Bytes> FfsLikeServer::ReadBlock(uint64_t blk) {
  if (auto it = pinned_meta_.find(blk); it != pinned_meta_.end()) {
    return it->second;
  }
  if (Bytes* hit = buffer_cache_->Get(blk); hit != nullptr) {
    return *hit;
  }
  Bytes out;
  S4_RETURN_IF_ERROR(device_->Read(BlockSector(blk), kSectorsPerBlock, &out));
  buffer_cache_->Put(blk, out, out.size());
  return out;
}

Status FfsLikeServer::WriteBlock(uint64_t blk, ByteSpan content) {
  S4_CHECK(content.size() == kBlockSize);
  ++stats_.data_writes;
  S4_RETURN_IF_ERROR(device_->Write(BlockSector(blk), content));
  buffer_cache_->Put(blk, Bytes(content.begin(), content.end()), content.size());
  return Status::Ok();
}

Result<Bytes> FfsLikeServer::ReadIndirect(uint64_t blk) { return ReadBlock(blk); }

Status FfsLikeServer::WriteIndirect(uint64_t blk, const Bytes& content) {
  if (!options_.sync_metadata) {
    pinned_meta_[blk] = content;
    buffer_cache_->Remove(blk);
    return Status::Ok();
  }
  buffer_cache_->Put(blk, content, content.size());
  ++stats_.metadata_writes;
  return device_->Write(BlockSector(blk), content);
}

// ---------------------------------------------------------------------------
// Block mapping
// ---------------------------------------------------------------------------

Result<uint64_t> FfsLikeServer::GetFileBlock(Inode* ino, uint32_t group, uint64_t index,
                                             bool allocate) {
  auto ensure_indirect = [&](uint64_t* slot) -> Result<uint64_t> {
    if (*slot == 0) {
      if (!allocate) {
        return uint64_t{0};
      }
      S4_ASSIGN_OR_RETURN(*slot, AllocBlock(group));
      Bytes zero(kBlockSize, 0);
      S4_RETURN_IF_ERROR(WriteIndirect(*slot, zero));
    }
    return *slot;
  };
  auto slot_in = [&](uint64_t indirect_blk, uint64_t slot_index,
                     uint64_t* out) -> Result<bool> {
    S4_ASSIGN_OR_RETURN(Bytes content, ReadIndirect(indirect_blk));
    uint64_t value = 0;
    std::memcpy(&value, content.data() + slot_index * 8, 8);
    if (value == 0 && allocate) {
      S4_ASSIGN_OR_RETURN(value, AllocBlock(group));
      std::memcpy(content.data() + slot_index * 8, &value, 8);
      S4_RETURN_IF_ERROR(WriteIndirect(indirect_blk, content));
    }
    *out = value;
    return true;
  };

  if (index < kDirectBlocks) {
    if (ino->direct[index] == 0 && allocate) {
      S4_ASSIGN_OR_RETURN(ino->direct[index], AllocBlock(group));
    }
    return ino->direct[index];
  }
  index -= kDirectBlocks;
  if (index < kPtrsPerBlock) {
    S4_ASSIGN_OR_RETURN(uint64_t ind, ensure_indirect(&ino->single_indirect));
    if (ind == 0) {
      return uint64_t{0};
    }
    uint64_t blk = 0;
    S4_RETURN_IF_ERROR(slot_in(ind, index, &blk).status());
    return blk;
  }
  index -= kPtrsPerBlock;
  if (index >= kPtrsPerBlock * kPtrsPerBlock) {
    return Status::InvalidArgument("file too large");
  }
  S4_ASSIGN_OR_RETURN(uint64_t dbl, ensure_indirect(&ino->double_indirect));
  if (dbl == 0) {
    return uint64_t{0};
  }
  uint64_t mid = 0;
  {
    S4_ASSIGN_OR_RETURN(Bytes content, ReadIndirect(dbl));
    std::memcpy(&mid, content.data() + (index / kPtrsPerBlock) * 8, 8);
    if (mid == 0 && allocate) {
      S4_ASSIGN_OR_RETURN(mid, AllocBlock(group));
      Bytes zero(kBlockSize, 0);
      S4_RETURN_IF_ERROR(WriteIndirect(mid, zero));
      std::memcpy(content.data() + (index / kPtrsPerBlock) * 8, &mid, 8);
      S4_RETURN_IF_ERROR(WriteIndirect(dbl, content));
    }
  }
  if (mid == 0) {
    return uint64_t{0};
  }
  uint64_t blk = 0;
  S4_RETURN_IF_ERROR(slot_in(mid, index % kPtrsPerBlock, &blk).status());
  return blk;
}

Status FfsLikeServer::FreeFileBlocks(Inode* ino, uint64_t from_index) {
  uint64_t nblocks = (ino->size + kBlockSize - 1) / kBlockSize;
  uint32_t group = 0;  // lookups don't allocate; hint unused
  for (uint64_t i = from_index; i < nblocks; ++i) {
    S4_ASSIGN_OR_RETURN(uint64_t blk, GetFileBlock(ino, group, i, /*allocate=*/false));
    if (blk == 0) {
      continue;
    }
    FreeBlock(blk);
    buffer_cache_->Remove(blk);
    // Clear the pointer so a later extension sees a hole, not stale data.
    if (i < kDirectBlocks) {
      ino->direct[i] = 0;
    } else {
      uint64_t rel = i - kDirectBlocks;
      uint64_t indirect = 0;
      uint64_t slot = 0;
      if (rel < kPtrsPerBlock) {
        indirect = ino->single_indirect;
        slot = rel;
      } else {
        rel -= kPtrsPerBlock;
        if (ino->double_indirect != 0) {
          S4_ASSIGN_OR_RETURN(Bytes dbl, ReadIndirect(ino->double_indirect));
          std::memcpy(&indirect, dbl.data() + (rel / kPtrsPerBlock) * 8, 8);
        }
        slot = rel % kPtrsPerBlock;
      }
      if (indirect != 0) {
        S4_ASSIGN_OR_RETURN(Bytes content, ReadIndirect(indirect));
        uint64_t zero = 0;
        std::memcpy(content.data() + slot * 8, &zero, 8);
        S4_RETURN_IF_ERROR(WriteIndirect(indirect, content));
      }
    }
  }
  if (from_index == 0) {
    std::fill(std::begin(ino->direct), std::end(ino->direct), 0);
    if (ino->single_indirect != 0) {
      FreeBlock(ino->single_indirect);
      ino->single_indirect = 0;
    }
    if (ino->double_indirect != 0) {
      S4_ASSIGN_OR_RETURN(Bytes dbl, ReadIndirect(ino->double_indirect));
      for (uint64_t s = 0; s < kPtrsPerBlock; ++s) {
        uint64_t leaf = 0;
        std::memcpy(&leaf, dbl.data() + s * 8, 8);
        if (leaf != 0) {
          FreeBlock(leaf);
        }
      }
      FreeBlock(ino->double_indirect);
      ino->double_indirect = 0;
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

Result<Bytes> FfsLikeServer::ReadFileRaw(uint32_t ino_num, uint64_t offset, uint64_t length) {
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(ino_num));
  if (offset >= ino->size) {
    return Bytes{};
  }
  uint32_t group = GroupOfInode(ino_num);
  length = std::min(length, ino->size - offset);
  Bytes out(length, 0);
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + length - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    S4_ASSIGN_OR_RETURN(uint64_t blk, GetFileBlock(ino, group, b, /*allocate=*/false));
    if (blk == 0) {
      continue;
    }
    S4_ASSIGN_OR_RETURN(Bytes content, ReadBlock(blk));
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + length, block_start + kBlockSize);
    std::memcpy(out.data() + (from - offset), content.data() + (from - block_start), to - from);
  }
  return out;
}

Status FfsLikeServer::WriteFileRaw(uint32_t ino_num, uint64_t offset, ByteSpan data,
                                   bool sync_inode) {
  if (data.empty()) {
    return Status::Ok();
  }
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(ino_num));
  uint32_t group = GroupOfInode(ino_num);
  uint64_t old_size = ino->size;
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + data.size() - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    S4_ASSIGN_OR_RETURN(uint64_t blk, GetFileBlock(ino, group, b, /*allocate=*/true));
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + data.size(), block_start + kBlockSize);
    Bytes content;
    if (from == block_start && to == block_start + kBlockSize) {
      content.assign(data.begin() + (from - offset), data.begin() + (to - offset));
    } else {
      // Partial block: read-modify-write in place.
      if (block_start < old_size) {
        S4_ASSIGN_OR_RETURN(content, ReadBlock(blk));
      } else {
        content.assign(kBlockSize, 0);
      }
      uint64_t valid = old_size > block_start
                           ? std::min<uint64_t>(old_size - block_start, kBlockSize)
                           : 0;
      std::memset(content.data() + valid, 0, kBlockSize - valid);
      std::memcpy(content.data() + (from - block_start), data.data() + (from - offset),
                  to - from);
    }
    S4_RETURN_IF_ERROR(WriteBlock(blk, content));
  }
  ino->size = std::max(ino->size, offset + data.size());
  ino->mtime = clock_->Now();
  if (!sync_inode) {
    dirty_meta_sectors_.insert(InodeSector(ino_num));
    return Status::Ok();
  }
  return WriteInodeMeta(ino_num);
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

Result<ParsedDir*> FfsLikeServer::LoadDir(FileHandle dir) {
  auto it = dir_cache_.find(dir);
  if (it != dir_cache_.end()) {
    return &it->second;
  }
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(static_cast<uint32_t>(dir)));
  if (ino->type != FileType::kDirectory) {
    return Status::InvalidArgument("not a directory");
  }
  S4_ASSIGN_OR_RETURN(Bytes stream, ReadFileRaw(static_cast<uint32_t>(dir), 0, ino->size));
  S4_ASSIGN_OR_RETURN(ParsedDir parsed, ParseDirStream(stream));
  return &(dir_cache_[dir] = std::move(parsed));
}

Status FfsLikeServer::AppendDirRecord(FileHandle dir, const DirRecord& record) {
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(static_cast<uint32_t>(dir)));
  Bytes encoded = EncodeDirRecord(record);
  S4_RETURN_IF_ERROR(
      WriteFileRaw(static_cast<uint32_t>(dir), ino->size, encoded, /*sync_inode=*/false));
  auto it = dir_cache_.find(dir);
  if (it != dir_cache_.end()) {
    ++it->second.record_count;
    if (record.op == DirRecord::Op::kAdd) {
      DirEntry e;
      e.name = record.name;
      e.handle = record.handle;
      e.type = record.type;
      it->second.entries[record.name] = e;
    } else {
      it->second.entries.erase(record.name);
    }
  }
  return Status::Ok();
}

Status FfsLikeServer::MaybeCompactDir(FileHandle dir) {
  auto it = dir_cache_.find(dir);
  if (it == dir_cache_.end() || !it->second.NeedsCompaction()) {
    return Status::Ok();
  }
  Bytes compacted = CompactDirStream(it->second);
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(static_cast<uint32_t>(dir)));
  uint64_t keep_blocks = (compacted.size() + kBlockSize - 1) / kBlockSize;
  S4_RETURN_IF_ERROR(FreeFileBlocks(ino, keep_blocks));
  ino->size = 0;
  S4_RETURN_IF_ERROR(
      WriteFileRaw(static_cast<uint32_t>(dir), 0, compacted, /*sync_inode=*/false));
  ino->size = compacted.size();
  it->second.record_count = it->second.entries.size();
  return WriteInodeMeta(static_cast<uint32_t>(dir));
}

Result<FileHandle> FfsLikeServer::Lookup(FileHandle dir, const std::string& name) {
  S4_ASSIGN_OR_RETURN(ParsedDir * parsed, LoadDir(dir));
  auto it = parsed->entries.find(name);
  if (it == parsed->entries.end()) {
    return Status::NotFound("no such name: " + name);
  }
  return it->second.handle;
}

Result<FileHandle> FfsLikeServer::CreateNode(FileHandle dir, const std::string& name,
                                             FileType type, uint32_t mode,
                                             const std::string& symlink_target) {
  S4_ASSIGN_OR_RETURN(ParsedDir * parsed, LoadDir(dir));
  if (parsed->entries.count(name) > 0) {
    return Status::AlreadyExists(name);
  }
  // New inodes land in the parent directory's cylinder group.
  S4_ASSIGN_OR_RETURN(uint32_t ino_num, AllocInode(GroupOfInode(static_cast<uint32_t>(dir))));
  Inode& ino = inodes_[ino_num];
  ino.type = type;
  ino.mode = mode;
  ino.ctime = ino.mtime = clock_->Now();
  S4_RETURN_IF_ERROR(WriteInodeMeta(ino_num));
  if (type == FileType::kSymlink) {
    S4_RETURN_IF_ERROR(WriteFileRaw(ino_num, 0, BytesOf(symlink_target), true));
  }
  DirRecord rec;
  rec.op = DirRecord::Op::kAdd;
  rec.type = type;
  rec.handle = ino_num;
  rec.name = name;
  S4_RETURN_IF_ERROR(AppendDirRecord(dir, rec));
  return FileHandle{ino_num};
}

Result<FileHandle> FfsLikeServer::CreateFile(FileHandle dir, const std::string& name,
                                             uint32_t mode) {
  return CreateNode(dir, name, FileType::kFile, mode, "");
}

Result<FileHandle> FfsLikeServer::Mkdir(FileHandle dir, const std::string& name,
                                        uint32_t mode) {
  return CreateNode(dir, name, FileType::kDirectory, mode, "");
}

Result<FileHandle> FfsLikeServer::Symlink(FileHandle dir, const std::string& name,
                                          const std::string& target) {
  return CreateNode(dir, name, FileType::kSymlink, 0777, target);
}

Status FfsLikeServer::RemoveNode(FileHandle dir, const std::string& name, bool want_dir) {
  S4_ASSIGN_OR_RETURN(ParsedDir * parsed, LoadDir(dir));
  auto it = parsed->entries.find(name);
  if (it == parsed->entries.end()) {
    return Status::NotFound(name);
  }
  bool is_dir = it->second.type == FileType::kDirectory;
  if (is_dir != want_dir) {
    return Status::InvalidArgument(want_dir ? "not a directory" : "is a directory");
  }
  uint32_t victim = static_cast<uint32_t>(it->second.handle);
  if (want_dir) {
    S4_ASSIGN_OR_RETURN(ParsedDir * victim_dir, LoadDir(victim));
    if (!victim_dir->entries.empty()) {
      return Status::FailedPrecondition("directory not empty");
    }
    dir_cache_.erase(victim);
  }
  S4_ASSIGN_OR_RETURN(Inode * vino, GetInode(victim));
  S4_RETURN_IF_ERROR(FreeFileBlocks(vino, 0));
  FreeInode(victim);
  S4_RETURN_IF_ERROR(WriteInodeMeta(victim));
  DirRecord rec;
  rec.op = DirRecord::Op::kRemove;
  rec.name = name;
  S4_RETURN_IF_ERROR(AppendDirRecord(dir, rec));
  return MaybeCompactDir(dir);
}

Status FfsLikeServer::Remove(FileHandle dir, const std::string& name) {
  return RemoveNode(dir, name, /*want_dir=*/false);
}

Status FfsLikeServer::Rmdir(FileHandle dir, const std::string& name) {
  return RemoveNode(dir, name, /*want_dir=*/true);
}

Status FfsLikeServer::Rename(FileHandle from_dir, const std::string& from_name,
                             FileHandle to_dir, const std::string& to_name) {
  S4_ASSIGN_OR_RETURN(ParsedDir * src, LoadDir(from_dir));
  auto it = src->entries.find(from_name);
  if (it == src->entries.end()) {
    return Status::NotFound(from_name);
  }
  DirEntry moving = it->second;
  S4_ASSIGN_OR_RETURN(ParsedDir * dst, LoadDir(to_dir));
  auto target = dst->entries.find(to_name);
  if (target != dst->entries.end()) {
    if (target->second.type == FileType::kDirectory) {
      return Status::InvalidArgument("target is a directory");
    }
    S4_RETURN_IF_ERROR(Remove(to_dir, to_name));
  }
  DirRecord del;
  del.op = DirRecord::Op::kRemove;
  del.name = from_name;
  S4_RETURN_IF_ERROR(AppendDirRecord(from_dir, del));
  DirRecord add;
  add.op = DirRecord::Op::kAdd;
  add.type = moving.type;
  add.handle = moving.handle;
  add.name = to_name;
  S4_RETURN_IF_ERROR(AppendDirRecord(to_dir, add));
  return Status::Ok();
}

Result<Bytes> FfsLikeServer::ReadFile(FileHandle file, uint64_t offset, uint64_t length) {
  return ReadFileRaw(static_cast<uint32_t>(file), offset, length);
}

Status FfsLikeServer::WriteFile(FileHandle file, uint64_t offset, ByteSpan data) {
  return WriteFileRaw(static_cast<uint32_t>(file), offset, data, /*sync_inode=*/true);
}

Result<FileAttr> FfsLikeServer::GetAttr(FileHandle file) {
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(static_cast<uint32_t>(file)));
  FileAttr attr;
  attr.type = ino->type;
  attr.mode = ino->mode;
  attr.uid = ino->uid;
  attr.size = ino->size;
  attr.ctime = ino->ctime;
  attr.mtime = ino->mtime;
  return attr;
}

Status FfsLikeServer::SetSize(FileHandle file, uint64_t size) {
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(static_cast<uint32_t>(file)));
  if (size < ino->size) {
    uint64_t keep_blocks = (size + kBlockSize - 1) / kBlockSize;
    S4_RETURN_IF_ERROR(FreeFileBlocks(ino, keep_blocks));
    if (size % kBlockSize != 0) {
      S4_ASSIGN_OR_RETURN(
          uint64_t blk,
          GetFileBlock(ino, GroupOfInode(static_cast<uint32_t>(file)), size / kBlockSize,
                       /*allocate=*/false));
      if (blk != 0) {
        S4_ASSIGN_OR_RETURN(Bytes content, ReadBlock(blk));
        std::memset(content.data() + size % kBlockSize, 0, kBlockSize - size % kBlockSize);
        S4_RETURN_IF_ERROR(WriteBlock(blk, content));
      }
    }
  }
  ino->size = size;
  ino->mtime = clock_->Now();
  return WriteInodeMeta(static_cast<uint32_t>(file));
}

Result<std::vector<DirEntry>> FfsLikeServer::ReadDir(FileHandle dir) {
  S4_ASSIGN_OR_RETURN(ParsedDir * parsed, LoadDir(dir));
  std::vector<DirEntry> out;
  out.reserve(parsed->entries.size());
  for (const auto& [name, e] : parsed->entries) {
    (void)name;
    out.push_back(e);
  }
  return out;
}

Result<std::string> FfsLikeServer::ReadLink(FileHandle link) {
  S4_ASSIGN_OR_RETURN(Inode * ino, GetInode(static_cast<uint32_t>(link)));
  S4_ASSIGN_OR_RETURN(Bytes target, ReadFileRaw(static_cast<uint32_t>(link), 0, ino->size));
  return StringOf(target);
}

Status FfsLikeServer::FlushMetadata() {
  for (uint64_t sector : dirty_meta_sectors_) {
    Bytes raw(kSectorSize, 0);
    S4_RETURN_IF_ERROR(device_->Write(sector, raw));
    ++stats_.lazy_flushes;
  }
  dirty_meta_sectors_.clear();
  for (auto& [blk, content] : pinned_meta_) {
    S4_RETURN_IF_ERROR(device_->Write(BlockSector(blk), content));
    buffer_cache_->Put(blk, content, content.size());
    ++stats_.lazy_flushes;
  }
  pinned_meta_.clear();
  return Status::Ok();
}

}  // namespace s4
