#include "src/baseline/conventional_versioning.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace s4 {

ConventionalVersioningStore::ConventionalVersioningStore(BlockDevice* device, SimClock* clock)
    : device_(device), clock_(clock) {
  (void)clock_;
}

Result<uint64_t> ConventionalVersioningStore::CreateObject() {
  uint64_t id = next_id_++;
  objects_[id] = Object();
  return id;
}

Result<DiskAddr> ConventionalVersioningStore::AppendRaw(ByteSpan data) {
  uint64_t sectors = (data.size() + kSectorSize - 1) / kSectorSize;
  if (next_sector_ + sectors > device_->sector_count()) {
    return Status::OutOfSpace("conventional store full");
  }
  Bytes padded(data.begin(), data.end());
  padded.resize(sectors * kSectorSize, 0);
  DiskAddr addr = next_sector_;
  S4_RETURN_IF_ERROR(device_->Write(addr, padded));
  next_sector_ += sectors;
  return addr;
}

Status ConventionalVersioningStore::Write(uint64_t id, uint64_t offset, ByteSpan data) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no such object");
  }
  Object& obj = it->second;
  if (data.empty()) {
    return Status::Ok();
  }
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + data.size() - 1) / kBlockSize;

  // New data blocks (read-modify-write for partial blocks).
  for (uint64_t b = first; b <= last; ++b) {
    Bytes content(kBlockSize, 0);
    DiskAddr old = 0;
    if (auto bit = obj.blocks.find(b); bit != obj.blocks.end()) {
      old = bit->second;
    }
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + data.size(), block_start + kBlockSize);
    if (old != 0 && (from != block_start || to != block_start + kBlockSize)) {
      S4_RETURN_IF_ERROR(device_->Read(old, kSectorsPerBlock, &content));
    }
    std::memcpy(content.data() + (from - block_start), data.data() + (from - offset),
                to - from);
    S4_ASSIGN_OR_RETURN(DiskAddr addr, AppendRaw(content));
    obj.blocks[b] = addr;
    stats_.data_bytes += kBlockSize;
  }

  // The versioned metadata chain: one new copy of every indirect block whose
  // pointer set changed, a new inode, and an inode-log entry.
  uint64_t new_size = std::max(obj.size, offset + data.size());
  std::set<uint64_t> single_groups;  // which single-indirect blocks changed
  bool double_changed = false;
  for (uint64_t b = first; b <= last; ++b) {
    if (b < kDirect) {
      continue;  // covered by the inode itself
    }
    uint64_t rel = b - kDirect;
    if (rel < kPtrs) {
      single_groups.insert(0);  // the single-indirect block
    } else {
      rel -= kPtrs;
      single_groups.insert(1 + rel / kPtrs);  // a leaf under the double ind.
      double_changed = true;
    }
  }
  Bytes indirect_block(kBlockSize, 0);
  for (uint64_t g : single_groups) {
    (void)g;
    S4_RETURN_IF_ERROR(AppendRaw(indirect_block).status());
    stats_.metadata_bytes += kBlockSize;
  }
  if (double_changed) {
    S4_RETURN_IF_ERROR(AppendRaw(indirect_block).status());
    stats_.metadata_bytes += kBlockSize;
  }
  // New inode (one sector) + inode-log entry (one sector).
  Bytes inode_sector(kSectorSize, 0);
  S4_RETURN_IF_ERROR(AppendRaw(inode_sector).status());
  S4_RETURN_IF_ERROR(AppendRaw(inode_sector).status());
  stats_.metadata_bytes += 2 * kSectorSize;

  obj.size = new_size;
  ++stats_.versions;
  return Status::Ok();
}

Result<Bytes> ConventionalVersioningStore::Read(uint64_t id, uint64_t offset,
                                                uint64_t length) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no such object");
  }
  const Object& obj = it->second;
  if (offset >= obj.size) {
    return Bytes{};
  }
  length = std::min(length, obj.size - offset);
  Bytes out(length, 0);
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + length - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) {
    auto bit = obj.blocks.find(b);
    if (bit == obj.blocks.end()) {
      continue;
    }
    Bytes content;
    S4_RETURN_IF_ERROR(device_->Read(bit->second, kSectorsPerBlock, &content));
    uint64_t block_start = b * kBlockSize;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min(offset + length, block_start + kBlockSize);
    std::memcpy(out.data() + (from - offset), content.data() + (from - block_start), to - from);
  }
  return out;
}

}  // namespace s4
