#include "src/recovery/history_browser.h"

#include <sstream>

#include "src/fs/nfs_attr.h"
#include "src/fs/s4_fs.h"

namespace s4 {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(path);
  while (std::getline(in, part, '/')) {
    if (!part.empty()) {
      parts.push_back(part);
    }
  }
  return parts;
}

}  // namespace

Result<ObjectId> HistoryBrowser::ResolveAt(const std::string& path, SimTime at) {
  S4_ASSIGN_OR_RETURN(ObjectId current, client_->PMount(partition_, at));
  for (const std::string& part : SplitPath(path)) {
    S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(current, at));
    S4_ASSIGN_OR_RETURN(Bytes stream, client_->Read(current, 0, attrs.size, at));
    S4_ASSIGN_OR_RETURN(ParsedDir dir, ParseDirStream(stream));
    auto it = dir.entries.find(part);
    if (it == dir.entries.end()) {
      return Status::NotFound("no such name at that time: " + part);
    }
    current = it->second.handle;
  }
  return current;
}

Result<std::vector<HistoricalEntry>> HistoryBrowser::ListAt(const std::string& dir_path,
                                                            SimTime at) {
  S4_ASSIGN_OR_RETURN(ObjectId dir, ResolveAt(dir_path, at));
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(dir, at));
  S4_ASSIGN_OR_RETURN(Bytes stream, client_->Read(dir, 0, attrs.size, at));
  S4_ASSIGN_OR_RETURN(ParsedDir parsed, ParseDirStream(stream));
  std::vector<HistoricalEntry> out;
  for (const auto& [name, e] : parsed.entries) {
    HistoricalEntry entry;
    entry.name = name;
    entry.object = e.handle;
    entry.type = e.type;
    auto child_attrs = client_->GetAttr(e.handle, at);
    if (child_attrs.ok()) {
      entry.size = child_attrs->size;
      entry.mtime = child_attrs->modify_time;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

Result<Bytes> HistoryBrowser::ReadAt(const std::string& file_path, SimTime at) {
  S4_ASSIGN_OR_RETURN(ObjectId file, ResolveAt(file_path, at));
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(file, at));
  return client_->Read(file, 0, attrs.size, at);
}

Result<std::vector<std::pair<SimTime, uint8_t>>> HistoryBrowser::VersionsOf(
    const std::string& path, SimTime at) {
  S4_ASSIGN_OR_RETURN(ObjectId object, ResolveAt(path, at));
  return client_->GetVersionList(object);
}

Status HistoryBrowser::RestoreObject(ObjectId object, SimTime at) {
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(object, at));
  S4_ASSIGN_OR_RETURN(Bytes content, client_->Read(object, 0, attrs.size, at));
  // Copy forward: writing the old contents makes a NEW current version; the
  // tampered intermediate versions remain in the history pool as evidence.
  S4_RETURN_IF_ERROR(client_->Write(object, 0, content));
  S4_RETURN_IF_ERROR(client_->Truncate(object, attrs.size));
  S4_RETURN_IF_ERROR(client_->SetAttr(object, attrs.opaque));
  return client_->Sync();
}

Status HistoryBrowser::RestoreFile(const std::string& path, SimTime at) {
  S4_ASSIGN_OR_RETURN(ObjectId object, ResolveAt(path, at));
  return RestoreObject(object, at);
}

Status HistoryBrowser::ResurrectFile(S4FileSystem* fs, const std::string& source_path,
                                     SimTime at, const std::string& dest_path) {
  S4_ASSIGN_OR_RETURN(ObjectId old_object, ResolveAt(source_path, at));
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(old_object, at));
  S4_ASSIGN_OR_RETURN(Bytes content, client_->Read(old_object, 0, attrs.size, at));

  // Split the destination into parent path + leaf name.
  size_t slash = dest_path.find_last_of('/');
  std::string parent = slash == std::string::npos ? "/" : dest_path.substr(0, slash);
  std::string leaf = slash == std::string::npos ? dest_path : dest_path.substr(slash + 1);

  S4_ASSIGN_OR_RETURN(FileHandle dir, MakeDirs(fs, parent));
  auto existing = fs->Lookup(dir, leaf);
  FileHandle file;
  if (existing.ok()) {
    file = *existing;
  } else {
    S4_ASSIGN_OR_RETURN(file, fs->CreateFile(dir, leaf, 0644));
  }
  S4_RETURN_IF_ERROR(fs->WriteFile(file, 0, content));
  return fs->SetSize(file, content.size());
}

}  // namespace s4
