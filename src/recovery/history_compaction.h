// History-pool compaction analysis (the future-work extension of paper
// section 4.2.2: "Adding differencing technology into the S4 cleaner").
//
// Journal-based metadata makes cross-version differencing easy: the blocks
// changed between versions are noted within each entry. This tool walks an
// object's real version chain through time-based reads and measures how much
// space a differencing (and differencing+LZ) representation of its history
// pool would save — the per-object, on-drive analogue of the Figure 7
// projection, and a dry run of what a delta-compacting cleaner would do.
#ifndef S4_SRC_RECOVERY_HISTORY_COMPACTION_H_
#define S4_SRC_RECOVERY_HISTORY_COMPACTION_H_

#include <vector>

#include "src/drive/s4_drive.h"

namespace s4 {

struct HistoryCompactionReport {
  uint64_t versions = 0;           // historical versions measured
  uint64_t raw_bytes = 0;          // history stored as full copies
  uint64_t delta_bytes = 0;        // as deltas against the next-newer version
  uint64_t delta_lz_bytes = 0;     // deltas, LZ-compressed
  // Round-trip verified: every historical version reconstructed exactly from
  // the delta chain.
  bool verified = false;

  double DifferencingRatio() const {
    return delta_bytes == 0 ? 1.0 : static_cast<double>(raw_bytes) / delta_bytes;
  }
  double CombinedRatio() const {
    return delta_lz_bytes == 0 ? 1.0 : static_cast<double>(raw_bytes) / delta_lz_bytes;
  }
};

// Measures the achievable history compaction for `object`. Requires
// administrative credentials (it reads every version regardless of Recovery
// flags). Versions older than the history barrier are skipped.
Result<HistoryCompactionReport> AnalyzeHistoryCompaction(S4Drive* drive,
                                                         const Credentials& admin,
                                                         ObjectId object);

}  // namespace s4

#endif  // S4_SRC_RECOVERY_HISTORY_COMPACTION_H_
