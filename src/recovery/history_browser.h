// Version and administration tools (paper section 3.6): "time-enhanced"
// versions of ls / cat / cp that bridge the gap between the standard file
// interface and the raw versions the drive stores.
//
// All access goes through the S4 RPC interface's optional time parameter, so
// these tools work for any user whose ACLs carry the Recovery flag, and for
// the administrator unconditionally.
#ifndef S4_SRC_RECOVERY_HISTORY_BROWSER_H_
#define S4_SRC_RECOVERY_HISTORY_BROWSER_H_

#include <string>
#include <vector>

#include "src/fs/dir_format.h"
#include "src/fs/file_system.h"
#include "src/rpc/client.h"

namespace s4 {

struct HistoricalEntry {
  std::string name;
  ObjectId object = kInvalidObjectId;
  FileType type = FileType::kFile;
  uint64_t size = 0;
  SimTime mtime = 0;
};

class HistoryBrowser {
 public:
  // `partition` names the file system root (as used by S4FileSystem).
  HistoryBrowser(S4Client* client, std::string partition)
      : client_(client), partition_(std::move(partition)) {}

  // Resolves an absolute path as of time `at` (walks directory versions).
  Result<ObjectId> ResolveAt(const std::string& path, SimTime at);

  // ls as of time `at`.
  Result<std::vector<HistoricalEntry>> ListAt(const std::string& dir_path, SimTime at);

  // cat as of time `at`.
  Result<Bytes> ReadAt(const std::string& file_path, SimTime at);

  // All reconstructible versions of a path's object, oldest first.
  Result<std::vector<std::pair<SimTime, uint8_t>>> VersionsOf(const std::string& path,
                                                              SimTime at);

  // cp --time: copies the version of `object` at `at` forward, making it the
  // object's new current version (the paper's restoration primitive — the
  // restore itself becomes a new version, so nothing is lost).
  Status RestoreObject(ObjectId object, SimTime at);

  // Restores a whole file at a path: resolves it at `at` and copies that
  // version forward.
  Status RestoreFile(const std::string& path, SimTime at);

  // Resurrects a file that has since been deleted: resolves `source_path`
  // as of time `at`, reads that version from the history pool, and recreates
  // it (as a brand-new object) at `dest_path` in the live file system.
  Status ResurrectFile(class S4FileSystem* fs, const std::string& source_path, SimTime at,
                       const std::string& dest_path);

 private:
  S4Client* client_;
  std::string partition_;
};

}  // namespace s4

#endif  // S4_SRC_RECOVERY_HISTORY_BROWSER_H_
