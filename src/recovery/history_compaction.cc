#include "src/recovery/history_compaction.h"

#include "src/delta/delta.h"
#include "src/delta/lz.h"

namespace s4 {

Result<HistoryCompactionReport> AnalyzeHistoryCompaction(S4Drive* drive,
                                                         const Credentials& admin,
                                                         ObjectId object) {
  if (!drive->IsAdmin(admin)) {
    return Status::PermissionDenied("history analysis requires administrative access");
  }
  S4_ASSIGN_OR_RETURN(std::vector<VersionInfo> versions, drive->GetVersionList(admin, object));

  HistoryCompactionReport report;
  report.verified = true;

  // Materialise each version, newest first; each historical version is
  // encoded as a delta against its next-newer neighbour — the direction the
  // cleaner would difference in, since the newest copy stays raw.
  Bytes newer;
  bool have_newer = false;
  SimTime last_time = INT64_MIN;
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (it->cause == JournalEntryType::kDelete) {
      continue;  // no contents at a deletion instant
    }
    if (it->time == last_time) {
      continue;  // large writes split across entries share one timestamp
    }
    last_time = it->time;
    auto attrs = drive->GetAttr(admin, object, it->time);
    if (!attrs.ok()) {
      continue;  // aged out or purged
    }
    S4_ASSIGN_OR_RETURN(Bytes content, drive->Read(admin, object, 0, attrs->size, it->time));
    if (!have_newer) {
      // The current (or newest reconstructible) version stays as-is.
      newer = std::move(content);
      have_newer = true;
      continue;
    }
    ++report.versions;
    report.raw_bytes += content.size();
    Bytes delta = ComputeDelta(newer, content);
    report.delta_bytes += delta.size();
    Bytes packed = LzCompress(delta);
    report.delta_lz_bytes += std::min(packed.size(), delta.size());

    // Verify the round trip: the compacted representation must reproduce the
    // version exactly (a cleaner that loses history is worse than useless).
    S4_ASSIGN_OR_RETURN(Bytes delta_back, LzDecompress(packed));
    S4_ASSIGN_OR_RETURN(Bytes reconstructed, ApplyDelta(newer, delta_back));
    if (reconstructed != content) {
      report.verified = false;
    }
    newer = std::move(content);
  }
  return report;
}

}  // namespace s4
