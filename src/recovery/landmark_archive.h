// Landmark versioning (paper section 6, "Versioning file systems vs.
// self-securing storage"): "By combining self-securing storage with
// long-term landmark versioning, recovery from users' accidents could be
// enhanced while also maintaining the benefits of intrusion survival."
//
// The detection window bounds how long the drive itself guarantees history;
// a LandmarkArchive lets a user (or administrator) promote specific versions
// to landmarks *before* they age out. Landmarks are copied forward into a
// dedicated archive object on the same drive, so they inherit all
// self-securing guarantees (versioned, auditable, not deletable by
// compromised clients) and survive indefinitely.
#ifndef S4_SRC_RECOVERY_LANDMARK_ARCHIVE_H_
#define S4_SRC_RECOVERY_LANDMARK_ARCHIVE_H_

#include <string>
#include <vector>

#include "src/rpc/client.h"

namespace s4 {

struct Landmark {
  ObjectId source = kInvalidObjectId;
  SimTime version_time = 0;     // the version that was preserved
  SimTime preserved_at = 0;     // when the landmark was taken
  std::string label;
  uint64_t size = 0;
  Bytes opaque_attrs;
};

class LandmarkArchive {
 public:
  // Creates a new archive object owned by the client's principal.
  static Result<std::unique_ptr<LandmarkArchive>> Create(S4Client* client);
  // Opens an existing archive object.
  static Result<std::unique_ptr<LandmarkArchive>> Open(S4Client* client, ObjectId archive);

  ObjectId archive_object() const { return archive_; }

  // Copies the version of `source` at `version_time` into the archive. The
  // caller needs history access to the source (Recovery flag or admin).
  Result<Landmark> Preserve(ObjectId source, SimTime version_time, const std::string& label);

  // All landmarks, in preservation order.
  Result<std::vector<Landmark>> List();

  // Retrieves a preserved version's contents by its index in List() order.
  Result<Bytes> Retrieve(size_t index);

  // Copies landmark `index` forward as the new current version of `target`.
  Status RestoreTo(size_t index, ObjectId target);

 private:
  explicit LandmarkArchive(S4Client* client, ObjectId archive)
      : client_(client), archive_(archive) {}

  struct Record {
    Landmark landmark;
    uint64_t payload_offset = 0;  // where the content lives in the archive
  };
  Result<std::vector<Record>> Parse();

  S4Client* client_;
  ObjectId archive_;
};

}  // namespace s4

#endif  // S4_SRC_RECOVERY_LANDMARK_ARCHIVE_H_
