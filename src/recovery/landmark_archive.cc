#include "src/recovery/landmark_archive.h"

#include "src/util/codec.h"

namespace s4 {
namespace {

constexpr uint32_t kLandmarkMagic = 0x53344C4D;  // "S4LM"

}  // namespace

Result<std::unique_ptr<LandmarkArchive>> LandmarkArchive::Create(S4Client* client) {
  S4_ASSIGN_OR_RETURN(ObjectId archive, client->Create(BytesOf("s4-landmark-archive")));
  return std::unique_ptr<LandmarkArchive>(new LandmarkArchive(client, archive));
}

Result<std::unique_ptr<LandmarkArchive>> LandmarkArchive::Open(S4Client* client,
                                                               ObjectId archive) {
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client->GetAttr(archive));
  (void)attrs;
  return std::unique_ptr<LandmarkArchive>(new LandmarkArchive(client, archive));
}

Result<Landmark> LandmarkArchive::Preserve(ObjectId source, SimTime version_time,
                                           const std::string& label) {
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(source, version_time));
  S4_ASSIGN_OR_RETURN(Bytes content, client_->Read(source, 0, attrs.size, version_time));

  Landmark landmark;
  landmark.source = source;
  landmark.version_time = version_time;
  landmark.label = label;
  landmark.size = content.size();
  landmark.opaque_attrs = attrs.opaque;

  // Record framing: header fields, then the payload, appended atomically
  // from the drive's point of view (a single Append RPC per part; the
  // archive is itself versioned, so even a torn append is diagnosable).
  Encoder enc(64 + label.size() + content.size());
  enc.PutU32(kLandmarkMagic);
  enc.PutVarint(source);
  enc.PutI64(version_time);
  enc.PutString(label);
  enc.PutLengthPrefixed(attrs.opaque);
  enc.PutVarint(content.size());
  enc.PutBytes(content);
  S4_ASSIGN_OR_RETURN(uint64_t new_size, client_->Append(archive_, enc.bytes()));
  (void)new_size;
  S4_RETURN_IF_ERROR(client_->Sync());
  S4_ASSIGN_OR_RETURN(ObjectAttrs archive_attrs, client_->GetAttr(archive_));
  landmark.preserved_at = archive_attrs.modify_time;
  return landmark;
}

Result<std::vector<LandmarkArchive::Record>> LandmarkArchive::Parse() {
  S4_ASSIGN_OR_RETURN(ObjectAttrs attrs, client_->GetAttr(archive_));
  S4_ASSIGN_OR_RETURN(Bytes stream, client_->Read(archive_, 0, attrs.size));
  std::vector<Record> records;
  Decoder dec(stream);
  while (!dec.done()) {
    auto magic = dec.U32();
    if (!magic.ok() || *magic != kLandmarkMagic) {
      break;  // torn tail
    }
    Record record;
    S4_ASSIGN_OR_RETURN(record.landmark.source, dec.Varint());
    S4_ASSIGN_OR_RETURN(record.landmark.version_time, dec.I64());
    S4_ASSIGN_OR_RETURN(record.landmark.label, dec.String());
    S4_ASSIGN_OR_RETURN(record.landmark.opaque_attrs, dec.LengthPrefixed());
    S4_ASSIGN_OR_RETURN(record.landmark.size, dec.Varint());
    record.payload_offset = dec.position();
    S4_RETURN_IF_ERROR(dec.Skip(record.landmark.size));
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<Landmark>> LandmarkArchive::List() {
  S4_ASSIGN_OR_RETURN(std::vector<Record> records, Parse());
  std::vector<Landmark> out;
  out.reserve(records.size());
  for (auto& record : records) {
    out.push_back(std::move(record.landmark));
  }
  return out;
}

Result<Bytes> LandmarkArchive::Retrieve(size_t index) {
  S4_ASSIGN_OR_RETURN(std::vector<Record> records, Parse());
  if (index >= records.size()) {
    return Status::NotFound("no such landmark");
  }
  return client_->Read(archive_, records[index].payload_offset,
                       records[index].landmark.size);
}

Status LandmarkArchive::RestoreTo(size_t index, ObjectId target) {
  S4_ASSIGN_OR_RETURN(Bytes content, Retrieve(index));
  S4_RETURN_IF_ERROR(client_->Write(target, 0, content));
  S4_RETURN_IF_ERROR(client_->Truncate(target, content.size()));
  return client_->Sync();
}

}  // namespace s4
