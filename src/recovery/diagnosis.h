// Intrusion diagnosis tools (paper sections 3.1 and 3.6): given the drive's
// audit log and history pool, estimate the scope of an intrusion's damage
// and drive recovery.
//
//   - which objects a compromised client/user touched (direct damage),
//   - read-before-write links as an (imperfect) estimate of taint
//     propagation (e.g. a tampered source file -> its object file),
//   - tamper detection by comparing an object's pre-intrusion version with
//     its current contents.
//
// All of these require administrative credentials: the audit log is
// admin-read-only and diagnosis must see versions regardless of Recovery
// flags.
#ifndef S4_SRC_RECOVERY_DIAGNOSIS_H_
#define S4_SRC_RECOVERY_DIAGNOSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/audit/audit_log.h"
#include "src/drive/s4_drive.h"

namespace s4 {

struct TaintLink {
  ObjectId source = kInvalidObjectId;  // object read...
  ObjectId sink = kInvalidObjectId;    // ...shortly before this was written
  SimTime read_time = 0;
  SimTime write_time = 0;
};

struct IntrusionReport {
  SimTime window_start = 0;
  SimTime window_end = 0;
  // Objects directly modified (write/append/truncate/setattr/setacl) in the
  // window, with the mutating ops observed.
  std::map<ObjectId, std::vector<AuditRecord>> modified;
  // Objects deleted in the window.
  std::set<ObjectId> deleted;
  // Objects read in the window (exposure: possible exfiltration).
  std::set<ObjectId> read;
  // Estimated propagation edges.
  std::vector<TaintLink> taint;
  // Denied operations (failed probes are themselves a signal).
  std::vector<AuditRecord> denied;
};

class IntrusionDiagnosis {
 public:
  // `admin` must carry the drive's admin key.
  IntrusionDiagnosis(S4Drive* drive, Credentials admin)
      : drive_(drive), admin_(admin) {}

  // Builds a damage report for activity by `client` in [from, to].
  // `taint_window` bounds the read->write gap treated as a propagation link.
  Result<IntrusionReport> Analyze(ClientId client, SimTime from, SimTime to,
                                  SimDuration taint_window = 5 * kSecond);

  // True if the object's current contents differ from its contents at
  // `baseline` (tamper detection without checksum databases: the history
  // pool itself is the baseline).
  Result<bool> IsTampered(ObjectId object, SimTime baseline);

  // Restores every object the report marks as modified (and still live) to
  // its state at `baseline` by copying the old versions forward. Returns the
  // objects restored.
  Result<std::vector<ObjectId>> RestoreModified(const IntrusionReport& report,
                                                SimTime baseline);

 private:
  S4Drive* drive_;
  Credentials admin_;
};

}  // namespace s4

#endif  // S4_SRC_RECOVERY_DIAGNOSIS_H_
