#include "src/recovery/diagnosis.h"

#include <algorithm>

namespace s4 {
namespace {

bool IsMutation(RpcOp op) {
  switch (op) {
    case RpcOp::kWrite:
    case RpcOp::kAppend:
    case RpcOp::kTruncate:
    case RpcOp::kSetAttr:
    case RpcOp::kSetAcl:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<IntrusionReport> IntrusionDiagnosis::Analyze(ClientId client, SimTime from, SimTime to,
                                                    SimDuration taint_window) {
  IntrusionReport report;
  report.window_start = from;
  report.window_end = to;

  AuditQuery query;
  query.from = from;
  query.to = to;
  query.client = client;
  S4_ASSIGN_OR_RETURN(std::vector<AuditRecord> records, drive_->QueryAudit(admin_, query));

  // Reads by this client, ordered by time, for the read-before-write pass.
  std::vector<AuditRecord> reads;
  for (const AuditRecord& r : records) {
    if (r.result != static_cast<uint8_t>(ErrorCode::kOk)) {
      report.denied.push_back(r);
      continue;
    }
    if (IsMutation(r.op)) {
      report.modified[r.object].push_back(r);
    } else if (r.op == RpcOp::kDelete) {
      report.deleted.insert(r.object);
      report.modified[r.object].push_back(r);
    } else if (r.op == RpcOp::kRead) {
      report.read.insert(r.object);
      reads.push_back(r);
    } else if (r.op == RpcOp::kCreate) {
      report.modified[r.object].push_back(r);
    }
  }

  // Taint estimate: a read of A at t_r followed by a write of B != A within
  // taint_window suggests data may have flowed A -> B (section 3.6's
  // source-file/object-file example).
  for (const AuditRecord& r : records) {
    if (!IsMutation(r.op) || r.result != static_cast<uint8_t>(ErrorCode::kOk)) {
      continue;
    }
    for (const AuditRecord& read : reads) {
      if (read.time <= r.time && r.time - read.time <= taint_window &&
          read.object != r.object) {
        report.taint.push_back(TaintLink{read.object, r.object, read.time, r.time});
      }
    }
  }
  // Deduplicate edges, keeping the earliest occurrence.
  std::sort(report.taint.begin(), report.taint.end(), [](const TaintLink& a, const TaintLink& b) {
    return std::tie(a.source, a.sink, a.write_time) < std::tie(b.source, b.sink, b.write_time);
  });
  report.taint.erase(std::unique(report.taint.begin(), report.taint.end(),
                                 [](const TaintLink& a, const TaintLink& b) {
                                   return a.source == b.source && a.sink == b.sink;
                                 }),
                     report.taint.end());
  return report;
}

Result<bool> IntrusionDiagnosis::IsTampered(ObjectId object, SimTime baseline) {
  S4_ASSIGN_OR_RETURN(ObjectAttrs old_attrs, drive_->GetAttr(admin_, object, baseline));
  auto current_attrs = drive_->GetAttr(admin_, object);
  if (!current_attrs.ok()) {
    return true;  // deleted or inaccessible now: that is tampering
  }
  if (current_attrs->size != old_attrs.size) {
    return true;
  }
  // Compare contents block by block.
  constexpr uint64_t kChunk = 64 * 1024;
  for (uint64_t off = 0; off < old_attrs.size; off += kChunk) {
    uint64_t n = std::min(kChunk, old_attrs.size - off);
    S4_ASSIGN_OR_RETURN(Bytes then, drive_->Read(admin_, object, off, n, baseline));
    S4_ASSIGN_OR_RETURN(Bytes now, drive_->Read(admin_, object, off, n));
    if (then != now) {
      return true;
    }
  }
  return false;
}

Result<std::vector<ObjectId>> IntrusionDiagnosis::RestoreModified(
    const IntrusionReport& report, SimTime baseline) {
  std::vector<ObjectId> restored;
  for (const auto& [object, ops] : report.modified) {
    (void)ops;
    if (report.deleted.count(object) > 0) {
      continue;  // resurrection is a file-level decision (HistoryBrowser)
    }
    auto old_attrs = drive_->GetAttr(admin_, object, baseline);
    if (!old_attrs.ok()) {
      continue;  // created during the intrusion: nothing to restore to
    }
    S4_ASSIGN_OR_RETURN(Bytes content,
                        drive_->Read(admin_, object, 0, old_attrs->size, baseline));
    S4_RETURN_IF_ERROR(drive_->Write(admin_, object, 0, content));
    S4_RETURN_IF_ERROR(drive_->Truncate(admin_, object, old_attrs->size));
    S4_RETURN_IF_ERROR(drive_->SetAttr(admin_, object, old_attrs->opaque));
    restored.push_back(object);
  }
  return restored;
}

}  // namespace s4
