#include "src/workload/ssh_build.h"

#include <algorithm>

namespace s4 {

Status SshBuild::Unpack(SshBuildReport* report) {
  SimTime start = clock_->Now();
  S4_ASSIGN_OR_RETURN(FileHandle root, fs_->Root());
  S4_ASSIGN_OR_RETURN(FileHandle top, fs_->Mkdir(root, "ssh-1.2.27", 0755));
  dirs_.push_back(top);
  for (uint32_t d = 1; d < config_.source_dirs; ++d) {
    S4_ASSIGN_OR_RETURN(FileHandle dir, fs_->Mkdir(top, "dir" + std::to_string(d), 0755));
    dirs_.push_back(dir);
  }

  // File-size distribution of a source tree: many small headers/docs, a body
  // of mid-sized .c files, a few large ones (gmp/zlib bundled sources).
  uint64_t remaining = config_.tree_bytes;
  for (uint32_t i = 0; i < config_.source_files; ++i) {
    uint64_t size;
    uint64_t roll = rng_.Below(100);
    if (roll < 40) {
      size = rng_.Range(200, 2000);         // headers, small docs
    } else if (roll < 90) {
      size = rng_.Range(2000, 25000);       // typical .c files
    } else {
      size = rng_.Range(25000, 120000);     // the big ones
    }
    uint32_t left = config_.source_files - i;
    size = std::min(size, std::max<uint64_t>(remaining / left, 256));
    remaining -= std::min(remaining, size);

    FileHandle dir = dirs_[rng_.Below(dirs_.size())];
    std::string name = "src" + std::to_string(i) + (rng_.Chance(4, 5) ? ".c" : ".h");
    S4_ASSIGN_OR_RETURN(FileHandle f, fs_->CreateFile(dir, name, 0644));
    // Tar extraction writes sequentially in 4KB-ish chunks.
    Bytes data = rng_.RandomBytes(size, /*compressibility=*/0.7);
    for (uint64_t off = 0; off < data.size(); off += 4096) {
      uint64_t n = std::min<uint64_t>(4096, data.size() - off);
      S4_RETURN_IF_ERROR(fs_->WriteFile(f, off, ByteSpan(data).subspan(off, n)));
    }
    sources_.push_back(SourceFile{dir, f, name, size});
    ++report->files_created;
    report->bytes_written += size;
  }
  report->unpack = clock_->Now() - start;
  return Status::Ok();
}

Status SshBuild::Configure(SshBuildReport* report) {
  SimTime start = clock_->Now();
  FileHandle top = dirs_[0];
  S4_ASSIGN_OR_RETURN(build_dir_, fs_->Mkdir(top, "obj", 0755));

  // config.log / config.h / Makefile accrete small appends with every probe.
  S4_ASSIGN_OR_RETURN(FileHandle config_log, fs_->CreateFile(top, "config.log", 0644));
  S4_ASSIGN_OR_RETURN(FileHandle config_h, fs_->CreateFile(top, "config.h", 0644));
  uint64_t log_size = 0;
  uint64_t h_size = 0;

  for (uint32_t probe = 0; probe < config_.configure_probes; ++probe) {
    // Write a tiny test program, compile it (CPU + object write), run it,
    // then delete both — the archetypal short-lived files.
    std::string cname = "conftest" + std::to_string(probe) + ".c";
    S4_ASSIGN_OR_RETURN(FileHandle test_c, fs_->CreateFile(top, cname, 0644));
    Bytes prog = rng_.RandomBytes(rng_.Range(120, 600), 0.8);
    S4_RETURN_IF_ERROR(fs_->WriteFile(test_c, 0, prog));

    S4_ASSIGN_OR_RETURN(Bytes src, fs_->ReadFile(test_c, 0, prog.size()));
    clock_->Advance(static_cast<SimDuration>(config_.compile_us_per_byte * src.size() * 4));
    std::string oname = "conftest" + std::to_string(probe);
    S4_ASSIGN_OR_RETURN(FileHandle test_bin, fs_->CreateFile(top, oname, 0755));
    Bytes obj = rng_.RandomBytes(rng_.Range(3000, 12000), 0.5);
    S4_RETURN_IF_ERROR(fs_->WriteFile(test_bin, 0, obj));
    // "Run" the probe.
    S4_RETURN_IF_ERROR(fs_->ReadFile(test_bin, 0, obj.size()).status());
    clock_->Advance(500);

    S4_RETURN_IF_ERROR(fs_->Remove(top, cname));
    S4_RETURN_IF_ERROR(fs_->Remove(top, oname));

    Bytes log_line = rng_.RandomBytes(rng_.Range(40, 160), 0.9);
    S4_RETURN_IF_ERROR(fs_->WriteFile(config_log, log_size, log_line));
    log_size += log_line.size();
    Bytes h_line = rng_.RandomBytes(rng_.Range(20, 60), 0.9);
    S4_RETURN_IF_ERROR(fs_->WriteFile(config_h, h_size, h_line));
    h_size += h_line.size();
    report->bytes_written += prog.size() + obj.size() + log_line.size() + h_line.size();
  }
  // Emit the Makefiles.
  for (uint32_t m = 0; m < 4; ++m) {
    S4_ASSIGN_OR_RETURN(FileHandle mk,
                        fs_->CreateFile(top, "Makefile" + std::to_string(m), 0644));
    Bytes mk_data = rng_.RandomBytes(rng_.Range(2000, 9000), 0.8);
    S4_RETURN_IF_ERROR(fs_->WriteFile(mk, 0, mk_data));
    report->bytes_written += mk_data.size();
  }
  report->configure = clock_->Now() - start;
  return Status::Ok();
}

Status SshBuild::Build(SshBuildReport* report) {
  SimTime start = clock_->Now();
  FileHandle top = dirs_[0];
  std::vector<std::pair<std::string, uint64_t>> objects;

  for (const SourceFile& src : sources_) {
    if (src.name.size() < 2 || src.name.substr(src.name.size() - 2) != ".c") {
      continue;
    }
    // cc -c: read the source (plus a few headers), burn CPU, write the .o.
    S4_ASSIGN_OR_RETURN(Bytes source, fs_->ReadFile(src.file, 0, src.size));
    for (int h = 0; h < 3 && !sources_.empty(); ++h) {
      const SourceFile& header = sources_[rng_.Below(sources_.size())];
      S4_RETURN_IF_ERROR(fs_->ReadFile(header.file, 0, header.size).status());
    }
    clock_->Advance(static_cast<SimDuration>(config_.compile_us_per_byte * source.size()));
    std::string oname = src.name.substr(0, src.name.size() - 2) + ".o";
    S4_ASSIGN_OR_RETURN(FileHandle obj, fs_->CreateFile(build_dir_, oname, 0644));
    uint64_t osize = std::max<uint64_t>(512, src.size * 3 / 5);
    Bytes odata = rng_.RandomBytes(osize, 0.4);
    S4_RETURN_IF_ERROR(fs_->WriteFile(obj, 0, odata));
    objects.emplace_back(oname, osize);
    report->bytes_written += osize;
  }

  // Link: read every object, write the executables (ssh, sshd, scp...).
  const char* programs[] = {"ssh", "sshd", "scp", "ssh-keygen"};
  for (const char* prog : programs) {
    uint64_t total = 0;
    for (const auto& [oname, osize] : objects) {
      S4_ASSIGN_OR_RETURN(FileHandle oh, fs_->Lookup(build_dir_, oname));
      S4_RETURN_IF_ERROR(fs_->ReadFile(oh, 0, osize).status());
      total += osize;
    }
    clock_->Advance(static_cast<SimDuration>(total * 0.05));  // link CPU
    S4_ASSIGN_OR_RETURN(FileHandle bin, fs_->CreateFile(top, prog, 0755));
    uint64_t bin_size = std::max<uint64_t>(200 * 1024, total / 4);
    Bytes bin_data = rng_.RandomBytes(bin_size, 0.4);
    for (uint64_t off = 0; off < bin_data.size(); off += 4096) {
      uint64_t n = std::min<uint64_t>(4096, bin_data.size() - off);
      S4_RETURN_IF_ERROR(fs_->WriteFile(bin, off, ByteSpan(bin_data).subspan(off, n)));
    }
    report->bytes_written += bin_size;
  }

  // make clean-ish: the build removes its temporary files.
  for (const auto& [oname, osize] : objects) {
    (void)osize;
    S4_RETURN_IF_ERROR(fs_->Remove(build_dir_, oname));
  }
  report->build = clock_->Now() - start;
  return Status::Ok();
}

Result<SshBuildReport> SshBuild::Run() {
  SshBuildReport report;
  S4_RETURN_IF_ERROR(Unpack(&report));
  S4_RETURN_IF_ERROR(Configure(&report));
  S4_RETURN_IF_ERROR(Build(&report));
  return report;
}

}  // namespace s4
