// SSH-build benchmark (paper section 5.1.1): a synthetic recreation of
// unpacking, configuring, and building SSH 1.2.27, the paper's replacement
// for the Andrew benchmark.
//
//   unpack    - extract a ~1MB compressed tarball into ~400 files of varying
//               sizes across a directory tree: metadata-operation heavy.
//   configure - autoconf-style feature probes: generate many tiny test
//               programs, "compile" and run them, delete the temporaries,
//               and accrete config.h / Makefiles: small-file churn.
//   build     - read every source file, burn compile CPU time (the phase is
//               CPU-intensive in the paper), write object files, link a few
//               executables, remove temporaries.
//
// Compilation cost is modelled as simulated CPU think time proportional to
// source bytes, so the build phase is CPU-dominated just as measured.
#ifndef S4_SRC_WORKLOAD_SSH_BUILD_H_
#define S4_SRC_WORKLOAD_SSH_BUILD_H_

#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"

namespace s4 {

struct SshBuildConfig {
  uint32_t source_files = 380;        // ssh-1.2.27 ships ~400 files
  uint32_t source_dirs = 12;
  uint64_t tree_bytes = 4500 * 1024;  // unpacked size ~4.5MB
  uint32_t configure_probes = 60;     // feature tests in ./configure
  double compile_us_per_byte = 1.1;   // CPU model: ~1s per MB of source
  uint64_t seed = 17;
};

struct SshBuildReport {
  SimDuration unpack = 0;
  SimDuration configure = 0;
  SimDuration build = 0;
  uint64_t files_created = 0;
  uint64_t bytes_written = 0;
};

class SshBuild {
 public:
  SshBuild(FileSystemApi* fs, SimClock* clock, SshBuildConfig config)
      : fs_(fs), clock_(clock), config_(config), rng_(config.seed) {}

  Result<SshBuildReport> Run();

 private:
  struct SourceFile {
    FileHandle dir;
    FileHandle file;
    std::string name;
    uint64_t size;
  };

  Status Unpack(SshBuildReport* report);
  Status Configure(SshBuildReport* report);
  Status Build(SshBuildReport* report);

  FileSystemApi* fs_;
  SimClock* clock_;
  SshBuildConfig config_;
  Rng rng_;
  std::vector<FileHandle> dirs_;
  std::vector<SourceFile> sources_;
  FileHandle build_dir_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_WORKLOAD_SSH_BUILD_H_
