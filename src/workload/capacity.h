// Capacity / detection-window projection (Figure 7).
//
// The paper projects how many days of complete version history fit in a
// 10GB history pool (20% of a 50GB disk) under the per-day write rates of
// three published workload studies, and how much cross-version differencing
// and compression extend that window. We reproduce the arithmetic and
// *measure* the differencing/compression multipliers with this repository's
// own delta/LZ implementations on a synthetic versioned source tree (the
// paper used a week of its own CVS history with Xdelta + gzip and found
// roughly 3x from differencing and 5x cumulative with compression).
#ifndef S4_SRC_WORKLOAD_CAPACITY_H_
#define S4_SRC_WORKLOAD_CAPACITY_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace s4 {

// Write-rate models from the three studies cited in section 5.2.
struct TraceStudy {
  std::string name;
  double write_mb_per_day;
};
std::vector<TraceStudy> PaperTraceStudies();

// Days of history a pool of `pool_gb` GB holds at `write_mb_per_day`,
// scaled by a space-efficiency multiplier (1.0 = raw versions).
double DetectionWindowDays(double pool_gb, double write_mb_per_day, double efficiency);

// Measured compaction multipliers on a synthetic version chain.
struct CompactionRatios {
  double differencing = 1.0;              // raw / differenced
  double differencing_and_compression = 1.0;
};

// Builds `versions` snapshots of a synthetic source tree (each version edits
// a fraction of each file, like a day of development), then measures how
// much space cross-version differencing — and differencing plus LZ
// compression — saves relative to storing raw versions.
CompactionRatios MeasureCompactionRatios(uint32_t files, uint32_t versions,
                                         uint32_t file_bytes, double edit_fraction,
                                         uint64_t seed);

}  // namespace s4

#endif  // S4_SRC_WORKLOAD_CAPACITY_H_
