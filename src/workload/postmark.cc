#include "src/workload/postmark.h"

namespace s4 {

Status PostMark::SetUpDirs() {
  if (!dirs_.empty()) {
    return Status::Ok();
  }
  S4_ASSIGN_OR_RETURN(FileHandle root, fs_->Root());
  for (uint32_t d = 0; d < config_.subdirectories; ++d) {
    auto dir = fs_->Mkdir(root, "s" + std::to_string(d), 0755);
    if (dir.ok()) {
      dirs_.push_back(*dir);
    } else if (dir.status().code() == ErrorCode::kAlreadyExists) {
      S4_ASSIGN_OR_RETURN(FileHandle existing, fs_->Lookup(root, "s" + std::to_string(d)));
      dirs_.push_back(existing);
    } else {
      return dir.status();
    }
  }
  return Status::Ok();
}

Status PostMark::CreateOne(PostMarkReport* report) {
  FileHandle dir = dirs_[rng_.Below(dirs_.size())];
  std::string name = "pm" + std::to_string(name_counter_++);
  S4_ASSIGN_OR_RETURN(FileHandle f, fs_->CreateFile(dir, name, 0644));
  uint64_t size = rng_.Range(config_.min_size, config_.max_size);
  Bytes data = rng_.RandomBytes(size, /*compressibility=*/0.3);
  S4_RETURN_IF_ERROR(fs_->WriteFile(f, 0, data));
  files_.push_back(LiveFile{dir, f, name, size});
  ++report->files_created;
  report->bytes_written += size;
  return Status::Ok();
}

Status PostMark::DeleteOne(size_t index, PostMarkReport* report) {
  LiveFile victim = files_[index];
  files_[index] = files_.back();
  files_.pop_back();
  S4_RETURN_IF_ERROR(fs_->Remove(victim.dir, victim.name));
  ++report->files_deleted;
  return Status::Ok();
}

Status PostMark::CreatePhase(PostMarkReport* report) {
  SimTime start = clock_->Now();
  for (uint32_t i = 0; i < config_.file_count; ++i) {
    S4_RETURN_IF_ERROR(CreateOne(report));
  }
  report->create_phase = clock_->Now() - start;
  return Status::Ok();
}

Status PostMark::TransactionPhase(PostMarkReport* report) {
  SimTime start = clock_->Now();
  for (uint32_t t = 0; t < config_.transactions; ++t) {
    // Sub-transaction 1: create or delete.
    if (rng_.Below(10) < config_.create_bias || files_.empty()) {
      S4_RETURN_IF_ERROR(CreateOne(report));
    } else {
      S4_RETURN_IF_ERROR(DeleteOne(rng_.Below(files_.size()), report));
    }
    if (files_.empty()) {
      continue;
    }
    // Sub-transaction 2: read or append.
    LiveFile& target = files_[rng_.Below(files_.size())];
    if (rng_.Below(10) < config_.read_bias) {
      S4_ASSIGN_OR_RETURN(Bytes data, fs_->ReadFile(target.file, 0, target.size));
      report->bytes_read += data.size();
      ++report->reads;
    } else {
      uint64_t len = rng_.Range(1, config_.max_append);
      Bytes data = rng_.RandomBytes(len, 0.3);
      S4_RETURN_IF_ERROR(fs_->WriteFile(target.file, target.size, data));
      target.size += len;
      report->bytes_written += len;
      ++report->appends;
    }
    if (config_.cleaner_hook && (t + 1) % config_.cleaner_interval == 0) {
      config_.cleaner_hook();
    }
  }
  report->transaction_phase = clock_->Now() - start;
  return Status::Ok();
}

Status PostMark::DeletePhase(PostMarkReport* report) {
  SimTime start = clock_->Now();
  while (!files_.empty()) {
    S4_RETURN_IF_ERROR(DeleteOne(files_.size() - 1, report));
  }
  report->delete_phase = clock_->Now() - start;
  return Status::Ok();
}

Result<PostMarkReport> PostMark::Run() {
  PostMarkReport report;
  S4_RETURN_IF_ERROR(SetUpDirs());
  S4_RETURN_IF_ERROR(CreatePhase(&report));
  S4_RETURN_IF_ERROR(TransactionPhase(&report));
  S4_RETURN_IF_ERROR(DeletePhase(&report));
  return report;
}

Result<PostMarkReport> PostMark::RunCreateOnly() {
  PostMarkReport report;
  S4_RETURN_IF_ERROR(SetUpDirs());
  S4_RETURN_IF_ERROR(CreatePhase(&report));
  return report;
}

Result<PostMarkReport> PostMark::RunTransactionsOnly() {
  PostMarkReport report;
  S4_RETURN_IF_ERROR(SetUpDirs());
  S4_RETURN_IF_ERROR(TransactionPhase(&report));
  return report;
}

}  // namespace s4
