#include "src/workload/capacity.h"

#include <algorithm>

#include "src/delta/delta.h"
#include "src/delta/lz.h"

namespace s4 {

std::vector<TraceStudy> PaperTraceStudies() {
  return {
      // Spasojevic & Satyanarayanan, wide-area AFS: ~143MB/day per server.
      {"AFS (Spasojevic & Satyanarayanan)", 143.0},
      // Vogels, Windows NT file usage: up to ~1GB/day per server.
      {"NT (Vogels)", 1000.0},
      // Santry et al., Elephant's research-group file system: ~110MB/day.
      {"Elephant (Santry et al.)", 110.0},
  };
}

double DetectionWindowDays(double pool_gb, double write_mb_per_day, double efficiency) {
  double pool_mb = pool_gb * 1024.0;
  return pool_mb * efficiency / write_mb_per_day;
}

CompactionRatios MeasureCompactionRatios(uint32_t files, uint32_t versions,
                                         uint32_t file_bytes, double edit_fraction,
                                         uint64_t seed) {
  Rng rng(seed);
  CompactionRatios ratios;

  uint64_t raw_total = 0;
  uint64_t diff_total = 0;
  uint64_t diff_lz_total = 0;

  for (uint32_t f = 0; f < files; ++f) {
    // Version 0: a source-code-like file.
    Bytes current = rng.RandomBytes(file_bytes, /*compressibility=*/0.75);
    for (uint32_t v = 1; v < versions; ++v) {
      // A day of edits: replace a few contiguous regions, insert a little.
      Bytes next = current;
      uint32_t edits = 1 + static_cast<uint32_t>(edit_fraction * 8);
      for (uint32_t e = 0; e < edits; ++e) {
        size_t span = std::max<size_t>(16, static_cast<size_t>(
                                               edit_fraction * file_bytes / edits));
        size_t at = rng.Below(std::max<size_t>(1, next.size() - span));
        // New code is text-like (LZ-compressible) but not a copy of anything
        // already in the tree, so differencing cannot absorb it.
        Bytes patch = rng.RandomBytes(span, 0.3);
        std::copy(patch.begin(), patch.end(), next.begin() + at);
      }
      // Occasionally grow the file a bit.
      if (rng.Chance(1, 3)) {
        Bytes tail = rng.RandomBytes(rng.Range(16, 256), 0.3);
        next.insert(next.end(), tail.begin(), tail.end());
      }

      // The old version `current` moves into the history pool; it can be
      // stored raw, as a delta against the newer version, or delta+LZ.
      raw_total += current.size();
      Bytes delta = ComputeDelta(next, current);
      diff_total += delta.size();
      Bytes packed = LzCompress(delta);
      diff_lz_total += std::min(packed.size(), delta.size());
      current = std::move(next);
    }
  }
  if (diff_total > 0) {
    ratios.differencing = static_cast<double>(raw_total) / diff_total;
  }
  if (diff_lz_total > 0) {
    ratios.differencing_and_compression = static_cast<double>(raw_total) / diff_lz_total;
  }
  return ratios;
}

}  // namespace s4
