// PostMark (Katcher, NetApp TR3022) reimplemented against FileSystemApi.
//
// The paper's configuration (section 5.1.1): 5,000 files between 512B and
// 9KB, 20,000 transactions, equal biases. Each transaction pairs one
// create-or-delete with one read-or-append. Figure 3 reports the creation
// and transaction phase times; Figure 5 reruns it with 50,000 transactions
// at increasing initial capacity utilisation.
#ifndef S4_SRC_WORKLOAD_POSTMARK_H_
#define S4_SRC_WORKLOAD_POSTMARK_H_

#include <functional>
#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"

namespace s4 {

struct PostMarkConfig {
  uint32_t file_count = 5000;
  uint32_t subdirectories = 10;
  uint32_t min_size = 512;
  uint32_t max_size = 9216;
  uint32_t transactions = 20000;
  // Biases out of 10 (PostMark's -b style): 5 = equal.
  uint32_t create_bias = 5;  // create vs delete
  uint32_t read_bias = 5;    // read vs append
  uint32_t max_append = 4096;
  uint64_t seed = 42;
  // Invoked every `cleaner_interval` transactions when set (Figure 5's
  // continuous foreground cleaning).
  std::function<void()> cleaner_hook;
  uint32_t cleaner_interval = 50;
};

struct PostMarkReport {
  SimDuration create_phase = 0;
  SimDuration transaction_phase = 0;
  SimDuration delete_phase = 0;
  uint64_t files_created = 0;
  uint64_t files_deleted = 0;
  uint64_t reads = 0;
  uint64_t appends = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;

  double TransactionsPerSecond(uint32_t transactions) const {
    double secs = ToSeconds(transaction_phase);
    return secs > 0 ? transactions / secs : 0;
  }
};

class PostMark {
 public:
  PostMark(FileSystemApi* fs, SimClock* clock, PostMarkConfig config)
      : fs_(fs), clock_(clock), config_(config), rng_(config.seed) {}

  // Runs all three phases (create, transactions, delete-remaining).
  Result<PostMarkReport> Run();
  // Runs only the create phase (used to pre-fill a disk to a target
  // utilisation for the cleaner experiment).
  Result<PostMarkReport> RunCreateOnly();
  // Runs transactions against an already-created file set.
  Result<PostMarkReport> RunTransactionsOnly();

 private:
  struct LiveFile {
    FileHandle dir;
    FileHandle file;
    std::string name;
    uint64_t size;
  };

  Status SetUpDirs();
  Status CreatePhase(PostMarkReport* report);
  Status TransactionPhase(PostMarkReport* report);
  Status DeletePhase(PostMarkReport* report);
  Status CreateOne(PostMarkReport* report);
  Status DeleteOne(size_t index, PostMarkReport* report);

  FileSystemApi* fs_;
  SimClock* clock_;
  PostMarkConfig config_;
  Rng rng_;
  std::vector<FileHandle> dirs_;
  std::vector<LiveFile> files_;
  uint64_t name_counter_ = 0;
};

}  // namespace s4

#endif  // S4_SRC_WORKLOAD_POSTMARK_H_
