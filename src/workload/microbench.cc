#include "src/workload/microbench.h"

namespace s4 {

Result<MicrobenchReport> RunSmallFileMicrobench(FileSystemApi* fs, SimClock* clock,
                                                const MicrobenchConfig& config) {
  MicrobenchReport report;
  Rng rng(config.seed);
  S4_ASSIGN_OR_RETURN(FileHandle root, fs->Root());
  std::vector<FileHandle> dirs;
  for (uint32_t d = 0; d < config.directories; ++d) {
    S4_ASSIGN_OR_RETURN(FileHandle dir, fs->Mkdir(root, "m" + std::to_string(d), 0755));
    dirs.push_back(dir);
  }

  struct Entry {
    FileHandle dir;
    FileHandle file;
    std::string name;
  };
  std::vector<Entry> entries;
  entries.reserve(config.file_count);

  SimTime t0 = clock->Now();
  for (uint32_t i = 0; i < config.file_count; ++i) {
    FileHandle dir = dirs[i % dirs.size()];
    std::string name = "f" + std::to_string(i);
    S4_ASSIGN_OR_RETURN(FileHandle f, fs->CreateFile(dir, name, 0644));
    Bytes data = rng.RandomBytes(config.file_size, 0.3);
    S4_RETURN_IF_ERROR(fs->WriteFile(f, 0, data));
    entries.push_back(Entry{dir, f, name});
  }
  report.create = clock->Now() - t0;

  SimTime t1 = clock->Now();
  for (const Entry& e : entries) {
    S4_RETURN_IF_ERROR(fs->ReadFile(e.file, 0, config.file_size).status());
  }
  report.read = clock->Now() - t1;

  SimTime t2 = clock->Now();
  for (const Entry& e : entries) {
    S4_RETURN_IF_ERROR(fs->Remove(e.dir, e.name));
  }
  report.remove = clock->Now() - t2;
  return report;
}

}  // namespace s4
