// Small-file microbenchmark (Figure 6): 10,000 1KB files split across 10
// directories — created, then read in creation order, then deleted in
// creation order. Used to isolate the audit log's overhead.
#ifndef S4_SRC_WORKLOAD_MICROBENCH_H_
#define S4_SRC_WORKLOAD_MICROBENCH_H_

#include <string>
#include <vector>

#include "src/fs/file_system.h"
#include "src/sim/sim_clock.h"
#include "src/util/rng.h"

namespace s4 {

struct MicrobenchConfig {
  uint32_t file_count = 10000;
  uint32_t directories = 10;
  uint32_t file_size = 1024;
  uint64_t seed = 23;
};

struct MicrobenchReport {
  SimDuration create = 0;
  SimDuration read = 0;
  SimDuration remove = 0;
};

Result<MicrobenchReport> RunSmallFileMicrobench(FileSystemApi* fs, SimClock* clock,
                                                const MicrobenchConfig& config);

}  // namespace s4

#endif  // S4_SRC_WORKLOAD_MICROBENCH_H_
