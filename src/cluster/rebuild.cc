// RebuildScheduler: budget-paced online reconstruction of one lost shard.
//
// The lost shard's contents are fully determined by (a) the shard map's
// deterministic create sequence and (b) the surviving shards: a data object's
// bytes come out of its parity group (parity XOR the other members), and a
// parity object is recomputed as the XOR of its members' current contents.
// Replaying the create sequence onto a freshly formatted spare therefore
// reproduces the exact backend object ids the map predicts, which is what
// keeps the array in allocation lockstep after the rebuild.
//
// Pacing: each Tick() reconstructs objects until a byte budget is spent, then
// syncs the spare so progress is durable. Resume after a power cut needs no
// rebuild journal — the spare's own allocation cursor says how many creates
// survived, and the last one is redone in overwrite mode in case its content
// writes were torn.
#include <algorithm>

#include "src/cluster/shard_router.h"
#include "src/util/check.h"

namespace s4 {

RebuildScheduler::RebuildScheduler(ShardRouter* router, uint32_t shard)
    : r_(router), shard_(shard), order_(router->map_.CreationOrder(shard)) {
  prog_.active = true;
  prog_.shard = shard;
  prog_.entries_total = order_.size();
}

Result<RpcResponse> RebuildScheduler::Spare(RpcRequest req) {
  req.creds = r_->admin_;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, r_->SendShard(shard_, std::move(req)));
  S4_RETURN_IF_ERROR(resp.ToStatus());
  return resp;
}

Status RebuildScheduler::EnsureStarted() {
  if (started_) return Status::Ok();
  ObjectId peek = r_->eps_[shard_].drive->PeekNextObjectId();
  if (peek == kFirstUserObjectId) {
    // Fresh spare: its first create is the shard's map object, like Format.
    RpcRequest create;
    create.op = RpcOp::kCreate;
    S4_ASSIGN_OR_RETURN(RpcResponse resp, Spare(std::move(create)));
    if (resp.value != kFirstUserObjectId) {
      return Status::Internal("spare map object landed at an unexpected id");
    }
    cursor_ = 0;
  } else {
    // Resume: the allocation cursor counts how many creates reached the
    // spare. The last one may have torn content writes, so redo it in place.
    uint64_t created = peek - (kFirstUserObjectId + 1);
    if (created > order_.size()) {
      return Status::DataCorruption("spare holds more objects than the lost shard had");
    }
    cursor_ = created;
    if (cursor_ > 0) {
      --cursor_;
      redo_first_ = true;
    }
  }
  RpcRequest mw;
  mw.op = RpcOp::kWrite;
  mw.object = kFirstUserObjectId;
  mw.offset = 0;
  mw.data = r_->map_.Encode();
  S4_RETURN_IF_ERROR(Spare(std::move(mw)).status());
  prog_.entries_done = cursor_;
  started_ = true;
  return Status::Ok();
}

Status RebuildScheduler::RebuildDataObject(ObjectId gid, bool overwrite, uint64_t* bytes) {
  const ShardMap::GidInfo* info = r_->map_.Find(gid);
  S4_CHECK(info != nullptr && info->shard == shard_);

  LaneImage lane;
  bool lost = info->group < 0;
  if (!lost) {
    auto lane_r = r_->ReadLaneAt(*info, std::nullopt);
    if (lane_r.ok()) {
      lane = *lane_r;
    } else if (lane_r.status().code() == ErrorCode::kNotFound) {
      lost = true;  // lane record never written (parity skipped at create)
    } else {
      return lane_r.status();
    }
  }

  if (!overwrite) {
    // The create itself must happen even for lost/deleted objects: the
    // spare's allocator has to mint every backend id the map predicts.
    RpcRequest create;
    create.op = RpcOp::kCreate;
    create.creds = Credentials{0, lost ? 0 : lane.owner, r_->opts_.admin_key};
    if (!lost) create.data = lane.attrs;
    S4_ASSIGN_OR_RETURN(RpcResponse resp, r_->SendShard(shard_, std::move(create)));
    S4_RETURN_IF_ERROR(resp.ToStatus());
    if (resp.value != info->backend) {
      return Status::Internal("rebuild broke allocation lockstep");
    }
  }

  if (lost || !lane.live) {
    // Tombstone: the object existed but is unrecoverable (no parity group)
    // or legitimately deleted. Either way the spare records a dead object.
    if (lost) ++r_->stats_.lost_objects;
    RpcRequest del;
    del.op = RpcOp::kDelete;
    del.object = info->backend;
    auto dresp = Spare(std::move(del));
    if (!dresp.ok() && dresp.status().code() != ErrorCode::kFailedPrecondition) {
      return dresp.status();  // FailedPrecondition = already deleted (resume)
    }
    *bytes += kLaneSlotBytes;
    return Status::Ok();
  }

  if (overwrite) {
    RpcRequest tr;
    tr.op = RpcOp::kTruncate;
    tr.object = info->backend;
    tr.length = 0;
    auto tresp = Spare(std::move(tr));
    if (!tresp.ok()) {
      if (tresp.status().code() != ErrorCode::kFailedPrecondition) {
        return tresp.status();
      }
      // Deleted on the spare but live in the lane directory: a degraded
      // delete was undone? That cannot happen — deletes only move live→dead.
      return Status::DataCorruption("spare object dead but lane record is live");
    }
    RpcRequest sa;
    sa.op = RpcOp::kSetAttr;
    sa.object = info->backend;
    sa.data = lane.attrs;
    S4_RETURN_IF_ERROR(Spare(std::move(sa)).status());
  }

  if (lane.size > 0) {
    S4_ASSIGN_OR_RETURN(Bytes content,
                        r_->ReconstructRange(*info, 0, lane.size, std::nullopt));
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.object = info->backend;
    w.offset = 0;
    w.data = std::move(content);
    S4_RETURN_IF_ERROR(Spare(std::move(w)).status());
  }
  r_->lane_cache_[gid] = lane;
  *bytes += lane.size + kLaneSlotBytes;
  return Status::Ok();
}

Status RebuildScheduler::RebuildParityObject(int32_t group, bool overwrite,
                                             uint64_t* bytes) {
  const ShardMap::Group& g = r_->map_.group(group);
  S4_CHECK(g.parity_shard == shard_);

  // Recompute from the members' actual current contents (never from stale
  // parity): every member lives on a distinct, surviving shard.
  Bytes parity;
  std::vector<Bytes> lane_slots;
  for (ObjectId mgid : g.members) {
    const ShardMap::GidInfo* mi = r_->map_.Find(mgid);
    S4_CHECK(mi != nullptr);
    if (!r_->Readable(mi->shard)) {
      return Status::Unavailable("parity rebuild needs every member shard");
    }
    LaneImage img;
    img.gid = mgid;
    RpcRequest attr;
    attr.op = RpcOp::kGetAttr;
    attr.creds = r_->admin_;
    attr.object = mi->backend;
    RpcResponse aresp = r_->SendShardOrError(mi->shard, std::move(attr));
    if (aresp.ok()) {
      img.live = true;
      img.size = aresp.attrs.size;
      img.create_time = aresp.attrs.create_time;
      img.modify_time = aresp.attrs.modify_time;
      img.attrs = aresp.attrs.opaque;
      RpcRequest acl;
      acl.op = RpcOp::kGetAclByIndex;
      acl.creds = r_->admin_;
      acl.object = mi->backend;
      acl.index = 0;
      RpcResponse aclr = r_->SendShardOrError(mi->shard, std::move(acl));
      if (aclr.ok()) img.owner = aclr.acl_entry.user;
      if (img.size > 0) {
        RpcRequest read;
        read.op = RpcOp::kRead;
        read.creds = r_->admin_;
        read.object = mi->backend;
        read.offset = 0;
        read.length = img.size;
        RpcResponse rr = r_->SendShardOrError(mi->shard, std::move(read));
        S4_RETURN_IF_ERROR(rr.ToStatus());
        for (size_t i = 0; i < rr.data.size(); ++i) {
          if (parity.size() <= i) parity.resize(rr.data.size(), 0);
          parity[i] = static_cast<uint8_t>(parity[i] ^ rr.data[i]);
        }
      }
    } else if (aresp.code == ErrorCode::kFailedPrecondition) {
      // Deleted member: contributes nothing to parity, dead lane record.
      auto it = r_->lane_cache_.find(mgid);
      if (it != r_->lane_cache_.end()) img.owner = it->second.owner;
    } else {
      return aresp.ToStatus();
    }
    r_->lane_cache_[mgid] = img;
    lane_slots.push_back(img.Encode());
  }

  if (!overwrite) {
    RpcRequest create;
    create.op = RpcOp::kCreate;
    S4_ASSIGN_OR_RETURN(RpcResponse resp, Spare(std::move(create)));
    if (resp.value != g.parity_backend) {
      return Status::Internal("rebuild broke allocation lockstep");
    }
  } else {
    RpcRequest tr;
    tr.op = RpcOp::kTruncate;
    tr.object = g.parity_backend;
    tr.length = 0;
    S4_RETURN_IF_ERROR(Spare(std::move(tr)).status());
  }

  for (size_t lane = 0; lane < lane_slots.size(); ++lane) {
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.object = g.parity_backend;
    w.offset = lane * kLaneSlotBytes;
    w.data = std::move(lane_slots[lane]);
    S4_RETURN_IF_ERROR(Spare(std::move(w)).status());
  }
  if (!parity.empty()) {
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.object = g.parity_backend;
    w.offset = kParityDataOffset;
    w.data = std::move(parity);
    S4_RETURN_IF_ERROR(Spare(std::move(w)).status());
  }
  *bytes += kParityDataOffset;
  return Status::Ok();
}

void RebuildScheduler::NoteDirtyData(ObjectId gid) { dirty_gids_.insert(gid); }
void RebuildScheduler::NoteDirtyParity(int32_t group) { dirty_groups_.insert(group); }

Result<bool> RebuildScheduler::Tick(uint64_t budget_bytes) {
  S4_RETURN_IF_ERROR(EnsureStarted());
  ++prog_.ticks;
  uint64_t bytes = 0;

  while (cursor_ < order_.size()) {
    if (bytes >= budget_bytes) {
      // Budget spent: sync so everything reconstructed this tick is durable,
      // then yield to foreground traffic.
      RpcRequest sync;
      sync.op = RpcOp::kSync;
      S4_RETURN_IF_ERROR(Spare(std::move(sync)).status());
      prog_.bytes_reconstructed += bytes;
      return false;
    }
    const ShardMap::ShardObjectRef& ref = order_[cursor_];
    bool overwrite = redo_first_;
    redo_first_ = false;
    if (ref.is_parity) {
      S4_RETURN_IF_ERROR(RebuildParityObject(ref.group, overwrite, &bytes));
    } else {
      S4_RETURN_IF_ERROR(RebuildDataObject(ref.gid, overwrite, &bytes));
    }
    ++cursor_;
    prog_.entries_done = cursor_;
  }

  // Main sweep done: re-copy whatever degraded-path mutations dirtied while
  // the sweep was running. These objects already exist on the spare.
  std::set<ObjectId> dirty_gids;
  std::set<int32_t> dirty_groups;
  dirty_gids.swap(dirty_gids_);
  dirty_groups.swap(dirty_groups_);
  for (ObjectId gid : dirty_gids) {
    S4_RETURN_IF_ERROR(RebuildDataObject(gid, /*overwrite=*/true, &bytes));
  }
  for (int32_t group : dirty_groups) {
    S4_RETURN_IF_ERROR(RebuildParityObject(group, /*overwrite=*/true, &bytes));
  }

  // Final map refresh + sync, then the router flips the shard healthy.
  RpcRequest mw;
  mw.op = RpcOp::kWrite;
  mw.object = kFirstUserObjectId;
  mw.offset = 0;
  mw.data = r_->map_.Encode();
  S4_RETURN_IF_ERROR(Spare(std::move(mw)).status());
  RpcRequest sync;
  sync.op = RpcOp::kSync;
  S4_RETURN_IF_ERROR(Spare(std::move(sync)).status());
  prog_.bytes_reconstructed += bytes;
  prog_.active = false;
  return true;
}

}  // namespace s4
