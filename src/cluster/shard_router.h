// ShardRouter: a multi-drive S4 array behind the single-drive client API.
//
// The router implements S4ClientApi, so S4FileSystem (or any other client)
// mounts an N-drive array exactly like one drive. Every Table-1 op is routed
// by the deterministic ShardMap; batched frames are re-split into per-shard
// kBatch envelopes that preserve per-sub order, and each data sub-op keeps
// the caller's credentials while the router's parity-maintenance sub-ops
// carry admin credentials — so every shard's audit chronicle attributes each
// record to the principal that actually issued it.
//
// Redundancy is rotating XOR parity: creates join fixed-width groups whose
// members and parity object all live on distinct shards. Data mutations ship
// one kXorWrite delta to the group's parity object (plus a 256-byte lane
// directory record), so parity maintenance needs no read round-trip on
// appends and creates. Because the parity object is itself an ordinary
// versioned S4 object, a lost shard's objects can be reconstructed at *any
// time inside the detection window* — current and history reads both survive
// a device loss, which is the property the paper's threat model needs: an
// intruder (or failure) taking out one drive does not erase the evidence.
//
// A replacement drive is rebuilt online by RebuildScheduler: replaying the
// lost shard's deterministic create sequence under a per-tick byte budget so
// foreground traffic keeps flowing, and resuming idempotently after a crash
// by reading the spare's own allocation cursor.
#ifndef S4_SRC_CLUSTER_SHARD_ROUTER_H_
#define S4_SRC_CLUSTER_SHARD_ROUTER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/shard_map.h"
#include "src/rpc/client.h"

namespace s4 {

// One drive of the array as the router sees it: the client-side transport it
// routes requests over, plus the drive handle for admin-plane maintenance
// that is part of the drive's public API (cleaner passes, allocation-cursor
// probes). The router never reaches into drive internals.
struct ShardEndpoint {
  S4Drive* drive = nullptr;
  RpcTransport* transport = nullptr;
};

enum class ShardState : uint8_t {
  kHealthy = 0,
  kDead = 1,        // device lost; ops served degraded via parity
  kRebuilding = 2,  // spare attached; RebuildScheduler owns it
};

// Parity-object layout: a lane directory (one fixed-size record per member)
// followed by the XOR of all member contents at kParityDataOffset.
constexpr uint64_t kLaneSlotBytes = 256;
constexpr uint64_t kParityDataOffset = 4096;

// The router's mirror of one member's metadata, stored in the lane directory
// of the member's parity object so degraded GetAttr / permission checks /
// rebuild work without the data shard.
struct LaneImage {
  ObjectId gid = 0;  // 0 = empty slot
  uint64_t size = 0;
  SimTime create_time = 0;
  SimTime modify_time = 0;
  bool live = false;
  UserId owner = 0;
  Bytes attrs;  // opaque attribute blob (drive caps it well under a slot)

  Bytes Encode() const;  // exactly kLaneSlotBytes
  static Result<LaneImage> Decode(ByteSpan slot);
};

struct RouterStats {
  uint64_t degraded_reads = 0;
  uint64_t degraded_writes = 0;
  uint64_t parity_deltas = 0;    // kXorWrite maintenance sub-ops issued
  uint64_t parity_skips = 0;     // maintenance skipped: parity shard down
  uint64_t parity_repairs = 0;   // full-group recomputes after a failed sub-op
  uint64_t shard_failures = 0;   // transitions to kDead
  uint64_t lost_objects = 0;     // unprotected objects tombstoned by rebuild
};

struct RebuildProgress {
  bool active = false;
  uint32_t shard = 0;
  uint64_t entries_total = 0;
  uint64_t entries_done = 0;
  uint64_t bytes_reconstructed = 0;
  uint64_t ticks = 0;
};

class RebuildScheduler;

class ShardRouter : public S4ClientApi {
 public:
  struct Options {
    // Must match every member drive's admin key; parity maintenance and
    // degraded reconstruction run as the array controller.
    uint64_t admin_key = 0;
    bool parity_enabled = true;
  };

  // Formats a fresh array over already-formatted drives (each drive must be
  // newly mounted with no user objects). Creates the per-shard map objects
  // and the array's partition-table object.
  static Result<std::unique_ptr<ShardRouter>> Format(std::vector<ShardEndpoint> shards,
                                                     SimClock* clock, Credentials creds,
                                                     Options opts);
  // Remounts an array from the persisted shard maps. Requires a sync-clean
  // shutdown: every shard's allocation cursor must be in lockstep with the
  // replayed map, otherwise kDataCorruption.
  static Result<std::unique_ptr<ShardRouter>> Mount(std::vector<ShardEndpoint> shards,
                                                    SimClock* clock, Credentials creds,
                                                    Options opts);

  ~ShardRouter() override;

  // S4ClientApi
  const Credentials& creds() const override { return creds_; }
  void set_creds(Credentials creds) override { creds_ = creds; }
  Result<RpcResponse> Call(RpcRequest req) override;
  Result<std::vector<RpcResponse>> CallBatch(std::vector<RpcRequest> reqs) override;

  // --- Array management -----------------------------------------------------

  size_t shard_count() const { return eps_.size(); }
  ShardState shard_state(size_t shard) const { return state_[shard]; }
  const ShardMap& map() const { return map_; }
  // Administrative device-loss notification (tests/harnesses also let the
  // router discover loss itself via kUnavailable responses).
  void FailShard(size_t shard);

  // Grows the array by one freshly formatted drive. New objects start
  // routing to it immediately (new epoch); existing objects do not move.
  Status AddShard(ShardEndpoint ep);

  // Replaces a failed shard with a freshly formatted spare and starts (or
  // resumes, if the spare already holds a partial rebuild) the online
  // rebuild. Ops keep flowing while RebuildTick is pumped.
  Status AttachSpare(size_t shard, ShardEndpoint spare);
  // Reconstructs up to `budget_bytes` of object content onto the spare, then
  // syncs it. Returns true when the rebuild is complete and the shard is
  // healthy again.
  Result<bool> RebuildTick(uint64_t budget_bytes);
  const RebuildProgress& rebuild_progress() const { return rebuild_progress_; }

  // Runs a cleaner pass on each live shard that wants one (the array-level
  // analogue of the bench harness's idle-time maintenance loop).
  Status MaintainShards();

  const RouterStats& rstats() const { return stats_; }
  // Time this router spent inside each shard's request path, on the shared
  // sim clock. A real array overlaps these; benches reconstruct the parallel
  // makespan as (elapsed - sum(busy) + max(busy)).
  const std::vector<SimDuration>& attributed_busy() const { return busy_; }

 private:
  friend class RebuildScheduler;

  // Per-CallBatch planning state: sub-ops queued per shard, flushed as one
  // kBatch envelope per shard (credentials prestamped per sub-op).
  struct PendingSub {
    RpcRequest req;
    bool parity_maint = false;
    int32_t group = -1;
  };
  struct BatchCtx {
    std::vector<std::vector<PendingSub>> pending;    // per shard
    std::vector<std::vector<RpcResponse>> results;   // per shard, append-only
    std::vector<size_t> submitted;                   // flushed count per shard
  };
  struct SubPlan {
    enum Kind { kImmediate, kDirect, kSyncFan };
    Kind kind = kImmediate;
    RpcResponse resp;  // kImmediate
    uint32_t shard = 0;
    size_t idx = 0;  // kDirect: index into results[shard]
    std::vector<std::pair<uint32_t, size_t>> fan;  // kSyncFan
    int32_t repair_group = -1;  // recompute this group if the data sub failed
    ObjectId gid = 0;
  };

  ShardRouter(std::vector<ShardEndpoint> shards, SimClock* clock, Credentials creds,
              Options opts);

  bool IsAdminCreds(const Credentials& c) const {
    return c.admin_key != 0 && c.admin_key == opts_.admin_key;
  }
  bool Healthy(uint32_t shard) const { return state_[shard] == ShardState::kHealthy; }
  // Readable for reconstruction: only healthy shards count (a rebuilding
  // spare is incomplete).
  bool Readable(uint32_t shard) const { return state_[shard] == ShardState::kHealthy; }
  void MarkShardDead(uint32_t shard);

  // Single request to one shard, with busy-time attribution and automatic
  // death detection on kUnavailable.
  Result<RpcResponse> SendShard(uint32_t shard, RpcRequest req);
  RpcResponse SendShardOrError(uint32_t shard, RpcRequest req);

  // Flushing cannot itself fail: transport errors become per-sub error
  // responses in ctx.results, and device loss is recorded as shard state.
  void FlushShard(BatchCtx& ctx, uint32_t shard);
  void FlushAll(BatchCtx& ctx);
  size_t Enqueue(BatchCtx& ctx, uint32_t shard, RpcRequest req, bool maint, int32_t group);

  // The big per-op switch: translates one client request into immediate
  // and/or queued shard sub-ops.
  SubPlan PlanSub(RpcRequest req, BatchCtx& ctx);
  RpcResponse ResolvePlan(SubPlan& plan, BatchCtx& ctx);

  // --- Parity plane ---------------------------------------------------------

  // In-RAM lane image for `gid`, loading it from the parity lane directory or
  // the data shard if cold. Never returns nullptr on Ok.
  Result<LaneImage*> EnsureLane(ObjectId gid);
  // Queues the parity delta (kXorWrite) + lane record update for a mutation
  // of `gid` covering [offset, offset+delta.size()). No-op (counted) when the
  // parity shard is down.
  void QueueParityDelta(BatchCtx& ctx, const ShardMap::GidInfo& info, uint64_t offset,
                        Bytes delta, const LaneImage& lane);
  void QueueLaneWrite(BatchCtx& ctx, const ShardMap::GidInfo& info, const LaneImage& lane);
  // Recomputes one group's parity object from its members' current contents
  // (used after a partially-applied batch left parity stale).
  Status RepairParityGroup(int32_t group);

  // --- Degraded plane -------------------------------------------------------

  Result<LaneImage> ReadLaneAt(const ShardMap::GidInfo& info,
                               std::optional<SimTime> at);
  // XOR-reconstructs [offset, offset+length) of `gid`'s content at time `at`
  // from the parity object and the surviving members.
  Result<Bytes> ReconstructRange(const ShardMap::GidInfo& info, uint64_t offset,
                                 uint64_t length, std::optional<SimTime> at);
  RpcResponse DegradedOp(const RpcRequest& req, const ShardMap::GidInfo& info);
  Status CheckDegradedAccess(const Credentials& creds, const LaneImage& lane) const;
  void NoteDegradedMutation(const ShardMap::GidInfo& info);

  // --- Partition table (array-level, object gid kFirstUserObjectId) --------

  Result<std::vector<std::pair<std::string, ObjectId>>> PTabLoad(
      BatchCtx& ctx, std::optional<SimTime> at);
  Status PTabStore(BatchCtx& ctx,
                   const std::vector<std::pair<std::string, ObjectId>>& table);
  RpcResponse PartitionOp(const RpcRequest& req, BatchCtx& ctx);

  // Internal read/GetAttr of a gid (admin), degraded-aware; used by the
  // partition plane and the rebuilder.
  Result<Bytes> ReadGid(BatchCtx& ctx, ObjectId gid, uint64_t offset, uint64_t length,
                        std::optional<SimTime> at);

  // Queues (never sends) the map write; outcome surfaces at flush time.
  void PersistMapTo(BatchCtx& ctx, uint32_t shard);
  Status PersistMapEverywhere();

  SimClock* clock_;
  Options opts_;
  Credentials creds_;
  Credentials admin_;
  ShardMap map_;
  bool map_dirty_ = false;

  std::vector<ShardEndpoint> eps_;
  std::vector<std::unique_ptr<S4Client>> clients_;
  std::vector<ShardState> state_;
  // Completion time of the last rebuild per shard: direct history reads below
  // this must take the parity path (the spare holds no pre-rebuild versions).
  std::vector<SimTime> rebuilt_since_;
  std::vector<SimDuration> busy_;

  std::unordered_map<ObjectId, LaneImage> lane_cache_;
  RouterStats stats_;

  std::unique_ptr<RebuildScheduler> rebuild_;
  RebuildProgress rebuild_progress_;
};

// Budget-paced online rebuild of one shard onto a freshly formatted spare.
// Replays the shard's deterministic create sequence; each Tick reconstructs
// up to the byte budget and syncs the spare, so progress is durable and a
// power cut mid-rebuild resumes from the spare's own allocation cursor.
class RebuildScheduler {
 public:
  RebuildScheduler(ShardRouter* router, uint32_t shard);

  // Reconstructs up to budget_bytes; returns true when the shard is fully
  // rebuilt (including re-copying objects mutated during the rebuild).
  Result<bool> Tick(uint64_t budget_bytes);

  // Degraded-path mutations during the rebuild invalidate already-copied
  // state; the scheduler re-copies these before declaring completion.
  void NoteDirtyData(ObjectId gid);
  void NoteDirtyParity(int32_t group);

  const RebuildProgress& progress() const { return prog_; }

 private:
  Status EnsureStarted();
  Status RebuildDataObject(ObjectId gid, bool overwrite, uint64_t* bytes);
  Status RebuildParityObject(int32_t group, bool overwrite, uint64_t* bytes);
  Result<RpcResponse> Spare(RpcRequest req);  // admin-credentialed op on the spare

  ShardRouter* r_;
  uint32_t shard_;
  std::vector<ShardMap::ShardObjectRef> order_;
  size_t cursor_ = 0;
  bool started_ = false;
  bool redo_first_ = false;  // resume: last entry may be partially written
  std::set<ObjectId> dirty_gids_;
  std::set<int32_t> dirty_groups_;
  RebuildProgress prog_;
};

}  // namespace s4

#endif  // S4_SRC_CLUSTER_SHARD_ROUTER_H_
