#include "src/cluster/shard_map.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/codec.h"

namespace s4 {
namespace {

constexpr uint32_t kShardMapMagic = 0x5334534Du;  // "S4SM"
constexpr uint32_t kShardMapVersion = 1;

// splitmix64 finalizer: a stable, well-mixed hash so gid->slot placement is
// identical across builds and sessions (the map is persisted state).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap ShardMap::Fresh(uint32_t shard_count, bool parity_enabled) {
  ShardMap m;
  Epoch e;
  e.from_gid = kFirstUserObjectId;
  e.shard_count = shard_count;
  for (uint32_t i = 0; i < kSlots; ++i) {
    e.slots[i] = static_cast<uint8_t>(i % shard_count);
  }
  m.epochs_.push_back(e);
  m.parity_enabled_ = parity_enabled && shard_count >= 2;
  m.InitEpochState();
  return m;
}

void ShardMap::InitEpochState() {
  uint32_t shards = epochs_.back().shard_count;
  next_backend_.assign(shards, kFirstUserObjectId + 1);  // +1: the map object
  rotor_.assign(epochs_.size(), 0);
  open_groups_.assign(epochs_.size(), {});
  creation_order_.assign(shards, {});
}

Bytes ShardMap::Encode() const {
  Encoder enc(32 + epochs_.size() * (kSlots + 16));
  enc.PutU32(kShardMapMagic);
  enc.PutU32(kShardMapVersion);
  enc.PutU8(parity_enabled_ ? 1 : 0);
  enc.PutVarint(epochs_.size());
  for (const Epoch& e : epochs_) {
    enc.PutVarint(e.from_gid);
    enc.PutVarint(e.shard_count);
    enc.PutBytes(ByteSpan(e.slots.data(), e.slots.size()));
  }
  enc.PutVarint(next_gid_);
  return enc.Take();
}

Result<ShardMap> ShardMap::Decode(ByteSpan bytes) {
  Decoder dec(bytes);
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kShardMapMagic) {
    return Status::DataCorruption("shard map: bad magic");
  }
  S4_ASSIGN_OR_RETURN(uint32_t version, dec.U32());
  if (version != kShardMapVersion) {
    return Status::DataCorruption("shard map: unknown version");
  }
  ShardMap m;
  S4_ASSIGN_OR_RETURN(uint8_t parity, dec.U8());
  m.parity_enabled_ = parity != 0;
  S4_ASSIGN_OR_RETURN(uint64_t num_epochs, dec.Varint());
  if (num_epochs == 0 || num_epochs > 4096) {
    return Status::DataCorruption("shard map: bad epoch count");
  }
  uint32_t prev_count = 0;
  ObjectId prev_from = 0;
  for (uint64_t i = 0; i < num_epochs; ++i) {
    Epoch e;
    S4_ASSIGN_OR_RETURN(e.from_gid, dec.Varint());
    S4_ASSIGN_OR_RETURN(uint64_t count, dec.Varint());
    if (count == 0 || count > 255 || count < prev_count || e.from_gid < prev_from) {
      return Status::DataCorruption("shard map: bad epoch");
    }
    e.shard_count = static_cast<uint32_t>(count);
    S4_ASSIGN_OR_RETURN(Bytes slots, dec.RawBytes(kSlots));
    for (uint32_t s = 0; s < kSlots; ++s) {
      if (slots[s] >= e.shard_count) {
        return Status::DataCorruption("shard map: slot out of range");
      }
      e.slots[s] = slots[s];
    }
    prev_count = e.shard_count;
    prev_from = e.from_gid;
    m.epochs_.push_back(e);
  }
  if (m.epochs_.front().from_gid != kFirstUserObjectId) {
    return Status::DataCorruption("shard map: first epoch must start at the gid floor");
  }
  S4_ASSIGN_OR_RETURN(ObjectId floor, dec.Varint());
  if (floor < kFirstUserObjectId) {
    return Status::DataCorruption("shard map: floor below first gid");
  }
  m.InitEpochState();
  // Replay the create sequence: this reconstructs every gid's backend id,
  // parity group membership and each shard's creation order.
  while (m.next_gid_ < floor) {
    m.AllocateCreate();
  }
  return m;
}

size_t ShardMap::EpochIndexOf(ObjectId gid) const {
  // Epochs are sorted by from_gid; find the last one at or below gid.
  size_t idx = 0;
  for (size_t i = 0; i < epochs_.size(); ++i) {
    if (epochs_[i].from_gid <= gid) idx = i;
  }
  return idx;
}

uint32_t ShardMap::ShardOf(ObjectId gid) const {
  const Epoch& e = epochs_[EpochIndexOf(gid)];
  return e.slots[Mix64(gid) % kSlots];
}

ShardMap::CreateActions ShardMap::AllocateCreate() {
  CreateActions a;
  a.gid = next_gid_++;
  size_t ei = EpochIndexOf(a.gid);
  const Epoch& e = epochs_[ei];
  uint32_t s = e.slots[Mix64(a.gid) % kSlots];
  a.data_shard = s;

  uint32_t width = std::min(e.shard_count - 1, kMaxLanes);
  if (parity_enabled_ && width >= 1) {
    // Join the oldest open group whose parity and existing members all avoid
    // the data shard (single-failure recoverability needs distinct shards).
    int32_t gidx = -1;
    for (int32_t cand : open_groups_[ei]) {
      const Group& g = groups_[static_cast<size_t>(cand)];
      if (g.parity_shard == s) continue;
      bool clash = false;
      for (ObjectId m : g.members) {
        if (gids_.at(m).shard == s) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        gidx = cand;
        break;
      }
    }
    if (gidx < 0) {
      a.prev_rotor = rotor_[ei];
      uint32_t p = rotor_[ei] % e.shard_count;
      if (p == s) p = (p + 1) % e.shard_count;
      rotor_[ei] = (p + 1) % e.shard_count;
      Group g;
      g.parity_shard = p;
      g.parity_backend = next_backend_[p]++;
      g.epoch = static_cast<uint32_t>(ei);
      gidx = static_cast<int32_t>(groups_.size());
      groups_.push_back(g);
      open_groups_[ei].push_back(gidx);
      ShardObjectRef ref;
      ref.group = gidx;
      ref.is_parity = true;
      creation_order_[p].push_back(ref);
      a.opens_group = true;
    }
    Group& g = groups_[static_cast<size_t>(gidx)];
    a.group = gidx;
    a.lane = static_cast<int32_t>(g.members.size());
    a.parity_shard = g.parity_shard;
    a.parity_backend = g.parity_backend;
    g.members.push_back(a.gid);
    if (g.members.size() >= width) {
      auto& open = open_groups_[ei];
      auto it = std::find(open.begin(), open.end(), gidx);
      a.closed_group_pos = static_cast<int32_t>(it - open.begin());
      open.erase(it);
    }
  }

  a.data_backend = next_backend_[s]++;
  gids_[a.gid] = GidInfo{a.gid, s, a.data_backend, a.group, a.lane};
  ShardObjectRef ref;
  ref.gid = a.gid;
  ref.group = a.group;
  creation_order_[s].push_back(ref);
  return a;
}

void ShardMap::UndoCreate(const CreateActions& a) {
  S4_CHECK(next_gid_ == a.gid + 1);  // must immediately follow its AllocateCreate
  --next_gid_;
  gids_.erase(a.gid);
  creation_order_[a.data_shard].pop_back();
  --next_backend_[a.data_shard];
  if (a.group < 0) return;

  size_t ei = groups_[static_cast<size_t>(a.group)].epoch;
  if (a.closed_group_pos >= 0) {
    // This create filled the group; reopen it at its original list position
    // so replay of the surviving creates makes identical choices.
    auto& open = open_groups_[ei];
    open.insert(open.begin() + a.closed_group_pos, a.group);
  }
  Group& g = groups_[static_cast<size_t>(a.group)];
  g.members.pop_back();
  if (a.opens_group) {
    auto& open = open_groups_[ei];
    open.erase(std::find(open.begin(), open.end(), a.group));
    groups_.pop_back();
    --next_backend_[a.parity_shard];
    creation_order_[a.parity_shard].pop_back();
    rotor_[ei] = a.prev_rotor;
  }
}

const ShardMap::GidInfo* ShardMap::Find(ObjectId gid) const {
  auto it = gids_.find(gid);
  return it == gids_.end() ? nullptr : &it->second;
}

Status ShardMap::AddEpoch(uint32_t new_shard_count) {
  if (new_shard_count <= epochs_.back().shard_count) {
    return Status::InvalidArgument("shard map: epochs can only grow the array");
  }
  if (parity_enabled_ && new_shard_count > kMaxLanes + 1) {
    return Status::InvalidArgument("shard map: shard count exceeds parity lane limit");
  }
  if (new_shard_count > 255) {
    return Status::InvalidArgument("shard map: shard count exceeds slot encoding");
  }
  Epoch e;
  e.from_gid = next_gid_;
  e.shard_count = new_shard_count;
  for (uint32_t i = 0; i < kSlots; ++i) {
    e.slots[i] = static_cast<uint8_t>(i % new_shard_count);
  }
  epochs_.push_back(e);
  next_backend_.resize(new_shard_count, kFirstUserObjectId + 1);
  rotor_.push_back(0);
  open_groups_.push_back({});
  creation_order_.resize(new_shard_count);
  return Status::Ok();
}

}  // namespace s4
