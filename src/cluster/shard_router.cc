#include "src/cluster/shard_router.h"

#include <algorithm>

#include "src/util/check.h"

namespace s4 {
namespace {

// Matches the drive-side cap so degraded SetAttr cannot accept a blob the
// data shard would have rejected.
constexpr size_t kMaxOpaqueAttrBytes = 200;
// Fixed-width fields of a lane slot (gid, size, times, flags, owner, len).
constexpr size_t kLaneFixedBytes = 44;
constexpr size_t kMaxPartitionNameBytes = 255;

RpcResponse ErrorResp(ErrorCode code, std::string msg) {
  RpcResponse r;
  r.code = code;
  r.message = std::move(msg);
  return r;
}

RpcResponse StatusResp(const Status& s) {
  RpcResponse r;
  r.code = s.code();
  r.message = s.message();
  return r;
}

void XorInto(Bytes* acc, ByteSpan b) {
  if (acc->size() < b.size()) acc->resize(b.size(), 0);
  for (size_t i = 0; i < b.size(); ++i) {
    (*acc)[i] = static_cast<uint8_t>((*acc)[i] ^ b[i]);
  }
}

bool IsMissing(ErrorCode code) {
  return code == ErrorCode::kNotFound || code == ErrorCode::kFailedPrecondition;
}

bool IsTimeGatedReadOp(RpcOp op) {
  return op == RpcOp::kRead || op == RpcOp::kGetAttr || op == RpcOp::kGetAclByUser ||
         op == RpcOp::kGetAclByIndex;
}

}  // namespace

// ---------------------------------------------------------------------------
// LaneImage codec
// ---------------------------------------------------------------------------

Bytes LaneImage::Encode() const {
  Encoder enc(kLaneSlotBytes);
  enc.PutU64(gid);
  enc.PutU64(size);
  enc.PutI64(create_time);
  enc.PutI64(modify_time);
  enc.PutU32(live ? 1u : 0u);
  enc.PutU32(owner);
  enc.PutU32(static_cast<uint32_t>(attrs.size()));
  enc.PutBytes(attrs);
  Bytes out = enc.Take();
  S4_CHECK(out.size() <= kLaneSlotBytes);
  out.resize(kLaneSlotBytes, 0);
  return out;
}

Result<LaneImage> LaneImage::Decode(ByteSpan slot) {
  if (slot.size() < kLaneSlotBytes) {
    return Status::NotFound("no lane record");
  }
  Decoder dec(slot);
  LaneImage img;
  S4_ASSIGN_OR_RETURN(img.gid, dec.U64());
  if (img.gid == 0) {
    return Status::NotFound("empty lane slot");
  }
  S4_ASSIGN_OR_RETURN(img.size, dec.U64());
  S4_ASSIGN_OR_RETURN(img.create_time, dec.I64());
  S4_ASSIGN_OR_RETURN(img.modify_time, dec.I64());
  S4_ASSIGN_OR_RETURN(uint32_t flags, dec.U32());
  img.live = (flags & 1u) != 0;
  S4_ASSIGN_OR_RETURN(img.owner, dec.U32());
  S4_ASSIGN_OR_RETURN(uint32_t attr_len, dec.U32());
  if (attr_len > kLaneSlotBytes - kLaneFixedBytes) {
    return Status::DataCorruption("lane record: bad attr length");
  }
  S4_ASSIGN_OR_RETURN(img.attrs, dec.RawBytes(attr_len));
  return img;
}

// ---------------------------------------------------------------------------
// Construction / format / mount
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(std::vector<ShardEndpoint> shards, SimClock* clock,
                         Credentials creds, Options opts)
    : clock_(clock),
      opts_(opts),
      creds_(creds),
      admin_{0, 0, opts.admin_key},
      map_(ShardMap::Fresh(static_cast<uint32_t>(shards.size()), opts.parity_enabled)),
      eps_(std::move(shards)) {
  for (ShardEndpoint& ep : eps_) {
    clients_.push_back(std::make_unique<S4Client>(ep.transport, admin_));
  }
  state_.assign(eps_.size(), ShardState::kHealthy);
  rebuilt_since_.assign(eps_.size(), 0);
  busy_.assign(eps_.size(), 0);
}

ShardRouter::~ShardRouter() = default;

Result<std::unique_ptr<ShardRouter>> ShardRouter::Format(std::vector<ShardEndpoint> shards,
                                                         SimClock* clock, Credentials creds,
                                                         Options opts) {
  if (shards.empty()) {
    return Status::InvalidArgument("array needs at least one shard");
  }
  if (opts.parity_enabled && shards.size() > ShardMap::kMaxLanes + 1) {
    return Status::InvalidArgument("array exceeds parity lane limit");
  }
  for (const ShardEndpoint& ep : shards) {
    if (ep.drive == nullptr || ep.transport == nullptr) {
      return Status::InvalidArgument("shard endpoint incomplete");
    }
    if (ep.drive->PeekNextObjectId() != kFirstUserObjectId) {
      return Status::FailedPrecondition("Format requires freshly formatted shards");
    }
  }
  std::unique_ptr<ShardRouter> r(new ShardRouter(std::move(shards), clock, creds, opts));
  // Every shard's first create is its copy of the shard map.
  for (uint32_t s = 0; s < r->shard_count(); ++s) {
    RpcRequest create;
    create.op = RpcOp::kCreate;
    create.creds = r->admin_;
    S4_ASSIGN_OR_RETURN(RpcResponse resp, r->SendShard(s, std::move(create)));
    S4_RETURN_IF_ERROR(resp.ToStatus());
    if (resp.value != kFirstUserObjectId) {
      return Status::Internal("shard map object landed at an unexpected id");
    }
  }
  // The array's partition table is the very first gid, parity-protected like
  // any other object.
  RpcRequest ptab;
  ptab.op = RpcOp::kCreate;
  S4_ASSIGN_OR_RETURN(RpcResponse resp, r->Call(std::move(ptab)));
  S4_RETURN_IF_ERROR(resp.ToStatus());
  S4_CHECK(resp.value == kFirstUserObjectId);
  S4_RETURN_IF_ERROR(r->PersistMapEverywhere());
  return r;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Mount(std::vector<ShardEndpoint> shards,
                                                        SimClock* clock, Credentials creds,
                                                        Options opts) {
  if (shards.empty()) {
    return Status::InvalidArgument("array needs at least one shard");
  }
  std::unique_ptr<ShardRouter> r(new ShardRouter(std::move(shards), clock, creds, opts));
  // Read every shard's persisted map; a crash between the per-shard floor
  // writes of one Sync can leave floors staggered, so the highest wins.
  bool have_map = false;
  ShardMap best =
      ShardMap::Fresh(static_cast<uint32_t>(r->shard_count()), opts.parity_enabled);
  for (uint32_t s = 0; s < r->shard_count(); ++s) {
    RpcRequest attr;
    attr.op = RpcOp::kGetAttr;
    attr.creds = r->admin_;
    attr.object = kFirstUserObjectId;
    S4_ASSIGN_OR_RETURN(RpcResponse aresp, r->SendShard(s, std::move(attr)));
    S4_RETURN_IF_ERROR(aresp.ToStatus());
    RpcRequest read;
    read.op = RpcOp::kRead;
    read.creds = r->admin_;
    read.object = kFirstUserObjectId;
    read.offset = 0;
    read.length = aresp.attrs.size;
    S4_ASSIGN_OR_RETURN(RpcResponse rresp, r->SendShard(s, std::move(read)));
    S4_RETURN_IF_ERROR(rresp.ToStatus());
    S4_ASSIGN_OR_RETURN(ShardMap m, ShardMap::Decode(rresp.data));
    if (m.shard_count() != r->shard_count()) {
      return Status::InvalidArgument("endpoint count does not match the persisted map");
    }
    if (!have_map || m.next_gid() > best.next_gid()) {
      best = std::move(m);
      have_map = true;
    }
  }
  r->map_ = std::move(best);
  // Lockstep check: the replayed map predicts every shard's next backend id.
  // A mismatch means creates happened that the persisted floor never covered
  // (crash without Sync) — refuse rather than serve misrouted objects.
  for (uint32_t s = 0; s < r->shard_count(); ++s) {
    ObjectId got = r->eps_[s].drive->PeekNextObjectId();
    ObjectId want = r->map_.ExpectedNextBackend(s);
    if (got != want) {
      return Status::DataCorruption(
          "shard allocation cursor out of lockstep with map "
          "(array was not shut down sync-clean)");
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Shard I/O primitives
// ---------------------------------------------------------------------------

void ShardRouter::MarkShardDead(uint32_t shard) {
  if (state_[shard] == ShardState::kDead) return;
  state_[shard] = ShardState::kDead;
  ++stats_.shard_failures;
}

void ShardRouter::FailShard(size_t shard) { MarkShardDead(static_cast<uint32_t>(shard)); }

Result<RpcResponse> ShardRouter::SendShard(uint32_t shard, RpcRequest req) {
  SimTime t0 = clock_->Now();
  clients_[shard]->set_creds(req.creds);
  auto resp = clients_[shard]->Call(std::move(req));
  busy_[shard] += clock_->Now() - t0;
  if (resp.ok() && resp->code == ErrorCode::kUnavailable) {
    MarkShardDead(shard);
  }
  return resp;
}

RpcResponse ShardRouter::SendShardOrError(uint32_t shard, RpcRequest req) {
  auto resp = SendShard(shard, std::move(req));
  return resp.ok() ? std::move(*resp) : StatusResp(resp.status());
}

size_t ShardRouter::Enqueue(BatchCtx& ctx, uint32_t shard, RpcRequest req, bool maint,
                            int32_t group) {
  if (ctx.pending.empty()) {
    ctx.pending.resize(eps_.size());
    ctx.results.resize(eps_.size());
    ctx.submitted.assign(eps_.size(), 0);
  }
  // A frame holds at most kMaxSubRequests subs; flush early rather than let
  // the drive reject the envelope.
  if (ctx.pending[shard].size() >= RpcBatchRequest::kMaxSubRequests - 2) {
    FlushShard(ctx, shard);
  }
  PendingSub sub;
  sub.req = std::move(req);
  sub.parity_maint = maint;
  sub.group = group;
  ctx.pending[shard].push_back(std::move(sub));
  return ctx.submitted[shard] + ctx.pending[shard].size() - 1;
}

void ShardRouter::FlushShard(BatchCtx& ctx, uint32_t shard) {
  if (ctx.pending.empty() || ctx.pending[shard].empty()) {
    return;
  }
  std::vector<PendingSub> subs = std::move(ctx.pending[shard]);
  ctx.pending[shard].clear();
  std::vector<RpcResponse> resps;
  if (subs.size() == 1) {
    resps.push_back(SendShardOrError(shard, std::move(subs[0].req)));
  } else {
    std::vector<RpcRequest> reqs;
    reqs.reserve(subs.size());
    for (PendingSub& s : subs) reqs.push_back(std::move(s.req));
    SimTime t0 = clock_->Now();
    auto r = clients_[shard]->CallBatchPrestamped(std::move(reqs));
    busy_[shard] += clock_->Now() - t0;
    if (r.ok()) {
      resps = std::move(*r);
    } else {
      resps.assign(subs.size(), StatusResp(r.status()));
    }
  }
  // Maintenance failures don't surface to the caller: a parity object left
  // stale here is recomputed by repair or rebuild. Device loss is sticky.
  for (size_t i = 0; i < resps.size(); ++i) {
    if (resps[i].code == ErrorCode::kUnavailable) {
      MarkShardDead(shard);
    }
    if (i < subs.size() && subs[i].parity_maint && !resps[i].ok()) {
      ++stats_.parity_skips;
    }
  }
  ctx.submitted[shard] += resps.size();
  for (RpcResponse& r : resps) ctx.results[shard].push_back(std::move(r));
}

void ShardRouter::FlushAll(BatchCtx& ctx) {
  if (ctx.pending.empty()) return;
  for (uint32_t s = 0; s < eps_.size(); ++s) {
    FlushShard(ctx, s);
  }
}

void ShardRouter::PersistMapTo(BatchCtx& ctx, uint32_t shard) {
  RpcRequest w;
  w.op = RpcOp::kWrite;
  w.creds = admin_;
  w.object = kFirstUserObjectId;
  w.offset = 0;
  w.data = map_.Encode();
  Enqueue(ctx, shard, std::move(w), /*maint=*/true, -1);
}

Status ShardRouter::PersistMapEverywhere() {
  for (uint32_t s = 0; s < eps_.size(); ++s) {
    if (!Healthy(s)) continue;
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.creds = admin_;
    w.object = kFirstUserObjectId;
    w.offset = 0;
    w.data = map_.Encode();
    S4_RETURN_IF_ERROR(SendShardOrError(s, std::move(w)).ToStatus());
    RpcRequest sync;
    sync.op = RpcOp::kSync;
    sync.creds = admin_;
    S4_RETURN_IF_ERROR(SendShardOrError(s, std::move(sync)).ToStatus());
  }
  map_dirty_ = false;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Parity plane
// ---------------------------------------------------------------------------

Result<LaneImage*> ShardRouter::EnsureLane(ObjectId gid) {
  auto it = lane_cache_.find(gid);
  if (it != lane_cache_.end()) {
    return &it->second;
  }
  const ShardMap::GidInfo* info = map_.Find(gid);
  S4_CHECK(info != nullptr);
  LaneImage img;
  if (Readable(info->shard)) {
    // Data shard is authoritative for size/attrs; the owner approximation is
    // ACL entry 0 (the creator, unless SetAcl rewrote the whole list).
    RpcRequest attr;
    attr.op = RpcOp::kGetAttr;
    attr.creds = admin_;
    attr.object = info->backend;
    RpcResponse aresp = SendShardOrError(info->shard, std::move(attr));
    if (aresp.code == ErrorCode::kFailedPrecondition) {
      img.gid = gid;
      img.live = false;
    } else if (!aresp.ok()) {
      return aresp.ToStatus();
    } else {
      img.gid = gid;
      img.live = true;
      img.size = aresp.attrs.size;
      img.create_time = aresp.attrs.create_time;
      img.modify_time = aresp.attrs.modify_time;
      img.attrs = aresp.attrs.opaque;
      RpcRequest acl;
      acl.op = RpcOp::kGetAclByIndex;
      acl.creds = admin_;
      acl.object = info->backend;
      acl.index = 0;
      RpcResponse aclr = SendShardOrError(info->shard, std::move(acl));
      if (aclr.ok()) img.owner = aclr.acl_entry.user;
    }
  } else {
    S4_ASSIGN_OR_RETURN(img, ReadLaneAt(*info, std::nullopt));
  }
  auto ins = lane_cache_.emplace(gid, std::move(img));
  return &ins.first->second;
}

void ShardRouter::QueueLaneWrite(BatchCtx& ctx, const ShardMap::GidInfo& info,
                                 const LaneImage& lane) {
  if (info.group < 0) return;
  const ShardMap::Group& g = map_.group(info.group);
  if (state_[g.parity_shard] == ShardState::kRebuilding && rebuild_ != nullptr) {
    rebuild_->NoteDirtyParity(info.group);
  }
  if (!Healthy(g.parity_shard)) {
    ++stats_.parity_skips;
    return;
  }
  RpcRequest w;
  w.op = RpcOp::kWrite;
  w.creds = admin_;
  w.object = g.parity_backend;
  w.offset = static_cast<uint64_t>(info.lane) * kLaneSlotBytes;
  w.data = lane.Encode();
  Enqueue(ctx, g.parity_shard, std::move(w), /*maint=*/true, info.group);
}

void ShardRouter::QueueParityDelta(BatchCtx& ctx, const ShardMap::GidInfo& info,
                                   uint64_t offset, Bytes delta, const LaneImage& lane) {
  if (info.group < 0) return;
  const ShardMap::Group& g = map_.group(info.group);
  if (state_[g.parity_shard] == ShardState::kRebuilding && rebuild_ != nullptr) {
    rebuild_->NoteDirtyParity(info.group);
  }
  if (!Healthy(g.parity_shard)) {
    ++stats_.parity_skips;
    return;
  }
  if (!delta.empty()) {
    RpcRequest x;
    x.op = RpcOp::kXorWrite;
    x.creds = admin_;
    x.object = g.parity_backend;
    x.offset = kParityDataOffset + offset;
    x.data = std::move(delta);
    Enqueue(ctx, g.parity_shard, std::move(x), /*maint=*/true, info.group);
    ++stats_.parity_deltas;
  }
  QueueLaneWrite(ctx, info, lane);
}

Status ShardRouter::RepairParityGroup(int32_t group) {
  const ShardMap::Group& g = map_.group(group);
  if (!Healthy(g.parity_shard)) {
    return Status::Ok();  // stale until rebuild recomputes it
  }
  Bytes parity;
  std::vector<std::pair<uint64_t, Bytes>> lane_writes;
  for (size_t lane = 0; lane < g.members.size(); ++lane) {
    ObjectId mgid = g.members[lane];
    const ShardMap::GidInfo* mi = map_.Find(mgid);
    S4_CHECK(mi != nullptr);
    if (!Readable(mi->shard)) {
      return Status::Ok();  // member shard down: rebuild will recompute
    }
    LaneImage img;
    img.gid = mgid;
    RpcRequest attr;
    attr.op = RpcOp::kGetAttr;
    attr.creds = admin_;
    attr.object = mi->backend;
    RpcResponse aresp = SendShardOrError(mi->shard, std::move(attr));
    if (aresp.ok()) {
      img.live = true;
      img.size = aresp.attrs.size;
      img.create_time = aresp.attrs.create_time;
      img.modify_time = aresp.attrs.modify_time;
      img.attrs = aresp.attrs.opaque;
      RpcRequest acl;
      acl.op = RpcOp::kGetAclByIndex;
      acl.creds = admin_;
      acl.object = mi->backend;
      acl.index = 0;
      RpcResponse aclr = SendShardOrError(mi->shard, std::move(acl));
      if (aclr.ok()) img.owner = aclr.acl_entry.user;
      if (img.size > 0) {
        RpcRequest read;
        read.op = RpcOp::kRead;
        read.creds = admin_;
        read.object = mi->backend;
        read.offset = 0;
        read.length = img.size;
        RpcResponse rr = SendShardOrError(mi->shard, std::move(read));
        S4_RETURN_IF_ERROR(rr.ToStatus());
        XorInto(&parity, rr.data);
      }
    } else if (!IsMissing(aresp.code)) {
      return aresp.ToStatus();
    }
    lane_writes.emplace_back(lane * kLaneSlotBytes, img.Encode());
    lane_cache_[mgid] = img;
  }
  // Clear any stale tail beyond the recomputed parity range, then rewrite.
  RpcRequest attr;
  attr.op = RpcOp::kGetAttr;
  attr.creds = admin_;
  attr.object = g.parity_backend;
  RpcResponse aresp = SendShardOrError(g.parity_shard, std::move(attr));
  uint64_t new_end = kParityDataOffset + parity.size();
  if (aresp.ok() && aresp.attrs.size > new_end) {
    RpcRequest tr;
    tr.op = RpcOp::kTruncate;
    tr.creds = admin_;
    tr.object = g.parity_backend;
    tr.length = new_end;
    S4_RETURN_IF_ERROR(SendShardOrError(g.parity_shard, std::move(tr)).ToStatus());
  }
  for (auto& lw : lane_writes) {
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.creds = admin_;
    w.object = g.parity_backend;
    w.offset = lw.first;
    w.data = std::move(lw.second);
    S4_RETURN_IF_ERROR(SendShardOrError(g.parity_shard, std::move(w)).ToStatus());
  }
  if (!parity.empty()) {
    RpcRequest w;
    w.op = RpcOp::kWrite;
    w.creds = admin_;
    w.object = g.parity_backend;
    w.offset = kParityDataOffset;
    w.data = std::move(parity);
    S4_RETURN_IF_ERROR(SendShardOrError(g.parity_shard, std::move(w)).ToStatus());
  }
  ++stats_.parity_repairs;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Degraded plane
// ---------------------------------------------------------------------------

Result<LaneImage> ShardRouter::ReadLaneAt(const ShardMap::GidInfo& info,
                                          std::optional<SimTime> at) {
  if (info.group < 0) {
    return Status::Unavailable("object has no parity protection");
  }
  const ShardMap::Group& g = map_.group(info.group);
  if (!Readable(g.parity_shard)) {
    return Status::Unavailable("parity shard is down too");
  }
  RpcRequest read;
  read.op = RpcOp::kRead;
  read.creds = admin_;
  read.object = g.parity_backend;
  read.offset = static_cast<uint64_t>(info.lane) * kLaneSlotBytes;
  read.length = kLaneSlotBytes;
  read.at = at;
  RpcResponse resp = SendShardOrError(g.parity_shard, std::move(read));
  if (IsMissing(resp.code)) {
    return Status::NotFound("no lane record at that time");
  }
  S4_RETURN_IF_ERROR(resp.ToStatus());
  return LaneImage::Decode(resp.data);
}

Result<Bytes> ShardRouter::ReconstructRange(const ShardMap::GidInfo& info, uint64_t offset,
                                            uint64_t length, std::optional<SimTime> at) {
  if (length == 0) return Bytes{};
  if (info.group < 0) {
    return Status::Unavailable("object has no parity protection");
  }
  const ShardMap::Group& g = map_.group(info.group);
  if (!Readable(g.parity_shard)) {
    return Status::Unavailable("parity shard is down too");
  }
  RpcRequest pread;
  pread.op = RpcOp::kRead;
  pread.creds = admin_;
  pread.object = g.parity_backend;
  pread.offset = kParityDataOffset + offset;
  pread.length = length;
  pread.at = at;
  RpcResponse presp = SendShardOrError(g.parity_shard, std::move(pread));
  Bytes acc;
  if (presp.ok()) {
    acc = std::move(presp.data);
  } else if (!IsMissing(presp.code)) {
    return presp.ToStatus();
  }
  acc.resize(length, 0);
  // XOR out every *other* member's content over the same range; what remains
  // is the lost member's bytes.
  for (ObjectId mgid : g.members) {
    if (mgid == info.gid) continue;
    const ShardMap::GidInfo* mi = map_.Find(mgid);
    S4_CHECK(mi != nullptr);
    if (!Readable(mi->shard)) {
      return Status::Unavailable("two shards of one parity group are down");
    }
    RpcRequest mread;
    mread.op = RpcOp::kRead;
    mread.creds = admin_;
    mread.object = mi->backend;
    mread.offset = offset;
    mread.length = length;
    mread.at = at;
    RpcResponse mresp = SendShardOrError(mi->shard, std::move(mread));
    if (IsMissing(mresp.code)) {
      continue;  // deleted / not yet created at `at`: contributes zeros
    }
    S4_RETURN_IF_ERROR(mresp.ToStatus());
    XorInto(&acc, mresp.data);
  }
  acc.resize(length, 0);
  return acc;
}

Status ShardRouter::CheckDegradedAccess(const Credentials& creds,
                                        const LaneImage& lane) const {
  if (IsAdminCreds(creds) || creds.user == lane.owner) {
    return Status::Ok();
  }
  return Status::PermissionDenied(
      "degraded array can only authenticate the object owner");
}

void ShardRouter::NoteDegradedMutation(const ShardMap::GidInfo& info) {
  if (rebuild_ != nullptr && state_[info.shard] == ShardState::kRebuilding) {
    rebuild_->NoteDirtyData(info.gid);
  }
}

RpcResponse ShardRouter::DegradedOp(const RpcRequest& req, const ShardMap::GidInfo& info) {
  const bool is_read = IsTimeGatedReadOp(req.op) || req.op == RpcOp::kGetVersionList;
  std::optional<SimTime> lane_at = IsTimeGatedReadOp(req.op) ? req.at : std::nullopt;
  auto lane_r = ReadLaneAt(info, lane_at);
  if (!lane_r.ok()) {
    return StatusResp(lane_r.status());
  }
  LaneImage lane = *lane_r;
  Status access = CheckDegradedAccess(req.creds, lane);
  if (!access.ok()) {
    return StatusResp(access);
  }
  if (!lane.live && req.op != RpcOp::kGetVersionList &&
      !(IsTimeGatedReadOp(req.op) && req.at.has_value())) {
    return ErrorResp(ErrorCode::kFailedPrecondition, "object is deleted");
  }
  if (is_read) ++stats_.degraded_reads;

  switch (req.op) {
    case RpcOp::kRead: {
      RpcResponse r;
      if (req.offset >= lane.size) return r;
      uint64_t len = std::min(req.length, lane.size - req.offset);
      auto data = ReconstructRange(info, req.offset, len, req.at);
      if (!data.ok()) return StatusResp(data.status());
      r.data = std::move(*data);
      return r;
    }
    case RpcOp::kGetAttr: {
      RpcResponse r;
      r.attrs.size = lane.size;
      r.attrs.create_time = lane.create_time;
      r.attrs.modify_time = lane.modify_time;
      r.attrs.opaque = lane.attrs;
      return r;
    }
    case RpcOp::kGetVersionList: {
      // The parity object sees one version per member mutation, so its list
      // is a superset of the lost member's own (documented degraded-mode
      // semantics; the detection window is preserved).
      const ShardMap::Group& g = map_.group(info.group);
      RpcRequest vr;
      vr.op = RpcOp::kGetVersionList;
      vr.creds = admin_;
      vr.object = g.parity_backend;
      return SendShardOrError(g.parity_shard, std::move(vr));
    }
    case RpcOp::kGetAclByUser: {
      if (req.user == lane.owner) {
        RpcResponse r;
        r.acl_entry = AclEntry{lane.owner, kPermAll};
        return r;
      }
      return ErrorResp(ErrorCode::kNotFound,
                       "degraded: only the owner ACL entry is reconstructable");
    }
    case RpcOp::kGetAclByIndex: {
      if (req.index == 0) {
        RpcResponse r;
        r.acl_entry = AclEntry{lane.owner, kPermAll};
        return r;
      }
      return ErrorResp(ErrorCode::kNotFound,
                       "degraded: only the owner ACL entry is reconstructable");
    }
    default:
      break;
  }

  // Mutations: applied to the parity object only; the data shard's copy is
  // reconstructed from parity at rebuild time.
  SimTime now = clock_->Now();
  RpcResponse ok_resp;
  uint64_t xor_offset = 0;
  Bytes delta;
  switch (req.op) {
    case RpcOp::kWrite: {
      delta = req.data;
      xor_offset = req.offset;
      uint64_t end = req.offset + req.data.size();
      uint64_t overlap_end = std::min(end, lane.size);
      if (req.offset < overlap_end) {
        auto old = ReconstructRange(info, req.offset, overlap_end - req.offset,
                                    std::nullopt);
        if (!old.ok()) return StatusResp(old.status());
        for (size_t i = 0; i < old->size(); ++i) {
          delta[i] = static_cast<uint8_t>(delta[i] ^ (*old)[i]);
        }
      }
      lane.size = std::max(lane.size, end);
      break;
    }
    case RpcOp::kXorWrite: {
      // XOR is associative: the parity delta IS the payload.
      delta = req.data;
      xor_offset = req.offset;
      lane.size = std::max(lane.size, req.offset + req.data.size());
      break;
    }
    case RpcOp::kAppend: {
      delta = req.data;
      xor_offset = lane.size;
      lane.size += req.data.size();
      ok_resp.value = lane.size;
      break;
    }
    case RpcOp::kTruncate: {
      if (req.length < lane.size) {
        auto tail = ReconstructRange(info, req.length, lane.size - req.length,
                                     std::nullopt);
        if (!tail.ok()) return StatusResp(tail.status());
        delta = std::move(*tail);
        xor_offset = req.length;
      }
      lane.size = req.length;
      break;
    }
    case RpcOp::kDelete: {
      if (lane.size > 0) {
        auto content = ReconstructRange(info, 0, lane.size, std::nullopt);
        if (!content.ok()) return StatusResp(content.status());
        delta = std::move(*content);
        xor_offset = 0;
      }
      lane.live = false;
      lane.size = 0;
      break;
    }
    case RpcOp::kSetAttr: {
      if (req.data.size() > kMaxOpaqueAttrBytes) {
        return ErrorResp(ErrorCode::kInvalidArgument, "opaque attrs too large");
      }
      lane.attrs = req.data;
      break;
    }
    case RpcOp::kSetAcl:
      return ErrorResp(ErrorCode::kUnavailable,
                       "cannot update ACLs while the object's shard is down");
    case RpcOp::kFlushObject:
      return ErrorResp(ErrorCode::kUnavailable,
                       "cannot flush history while the object's shard is down");
    default:
      return ErrorResp(ErrorCode::kUnavailable, "operation needs the object's shard");
  }

  const ShardMap::Group& g = map_.group(info.group);
  if (!delta.empty()) {
    RpcRequest x;
    x.op = RpcOp::kXorWrite;
    x.creds = admin_;
    x.object = g.parity_backend;
    x.offset = kParityDataOffset + xor_offset;
    x.data = std::move(delta);
    Status st = SendShardOrError(g.parity_shard, std::move(x)).ToStatus();
    if (!st.ok()) return StatusResp(st);
    ++stats_.parity_deltas;
  }
  lane.modify_time = now;
  RpcRequest lw;
  lw.op = RpcOp::kWrite;
  lw.creds = admin_;
  lw.object = g.parity_backend;
  lw.offset = static_cast<uint64_t>(info.lane) * kLaneSlotBytes;
  lw.data = lane.Encode();
  Status st = SendShardOrError(g.parity_shard, std::move(lw)).ToStatus();
  if (!st.ok()) return StatusResp(st);
  lane_cache_[info.gid] = lane;
  ++stats_.degraded_writes;
  NoteDegradedMutation(info);
  return ok_resp;
}

// ---------------------------------------------------------------------------
// Partition table (array-level)
// ---------------------------------------------------------------------------

Result<Bytes> ShardRouter::ReadGid(BatchCtx& ctx, ObjectId gid, uint64_t offset,
                                   uint64_t length, std::optional<SimTime> at) {
  (void)ctx;
  const ShardMap::GidInfo* info = map_.Find(gid);
  if (info == nullptr) {
    return Status::NotFound("unknown object id");
  }
  bool direct = Readable(info->shard);
  if (direct && at.has_value() && *at < rebuilt_since_[info->shard]) {
    direct = false;  // the spare holds no pre-rebuild history
  }
  if (direct) {
    RpcRequest attr;
    attr.op = RpcOp::kGetAttr;
    attr.creds = admin_;
    attr.object = info->backend;
    attr.at = at;
    RpcResponse aresp = SendShardOrError(info->shard, std::move(attr));
    S4_RETURN_IF_ERROR(aresp.ToStatus());
    uint64_t size = aresp.attrs.size;
    if (offset >= size) return Bytes{};
    RpcRequest read;
    read.op = RpcOp::kRead;
    read.creds = admin_;
    read.object = info->backend;
    read.offset = offset;
    read.length = std::min(length, size - offset);
    read.at = at;
    RpcResponse rresp = SendShardOrError(info->shard, std::move(read));
    S4_RETURN_IF_ERROR(rresp.ToStatus());
    return std::move(rresp.data);
  }
  S4_ASSIGN_OR_RETURN(LaneImage lane, ReadLaneAt(*info, at));
  if (!lane.live) {
    return Status::FailedPrecondition("object is deleted");
  }
  if (offset >= lane.size) return Bytes{};
  return ReconstructRange(*info, offset, std::min(length, lane.size - offset), at);
}

Result<std::vector<std::pair<std::string, ObjectId>>> ShardRouter::PTabLoad(
    BatchCtx& ctx, std::optional<SimTime> at) {
  S4_ASSIGN_OR_RETURN(Bytes raw,
                      ReadGid(ctx, kFirstUserObjectId, 0, ~uint64_t{0}, at));
  std::vector<std::pair<std::string, ObjectId>> table;
  if (raw.empty()) return table;
  Decoder dec(raw);
  S4_ASSIGN_OR_RETURN(uint64_t count, dec.Varint());
  if (count > 100000) {
    return Status::DataCorruption("partition table: implausible entry count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    S4_ASSIGN_OR_RETURN(std::string name, dec.String());
    S4_ASSIGN_OR_RETURN(ObjectId gid, dec.Varint());
    table.emplace_back(std::move(name), gid);
  }
  // Trailing bytes are a stale longer encoding from before a PDelete; the
  // count prefix is authoritative.
  return table;
}

Status ShardRouter::PTabStore(BatchCtx& ctx,
                              const std::vector<std::pair<std::string, ObjectId>>& table) {
  Encoder enc(64);
  enc.PutVarint(table.size());
  for (const auto& e : table) {
    enc.PutString(e.first);
    enc.PutVarint(e.second);
  }
  RpcRequest w;
  w.op = RpcOp::kWrite;
  w.creds = admin_;
  w.object = kFirstUserObjectId;
  w.offset = 0;
  w.data = enc.Take();
  SubPlan plan = PlanSub(std::move(w), ctx);
  FlushAll(ctx);
  return ResolvePlan(plan, ctx).ToStatus();
}

RpcResponse ShardRouter::PartitionOp(const RpcRequest& req, BatchCtx& ctx) {
  switch (req.op) {
    case RpcOp::kPList: {
      auto table = PTabLoad(ctx, req.at);
      if (!table.ok()) return StatusResp(table.status());
      RpcResponse r;
      r.partitions = std::move(*table);
      return r;
    }
    case RpcOp::kPMount: {
      auto table = PTabLoad(ctx, req.at);
      if (!table.ok()) return StatusResp(table.status());
      for (const auto& e : *table) {
        if (e.first == req.name) {
          RpcResponse r;
          r.value = e.second;
          return r;
        }
      }
      return ErrorResp(ErrorCode::kNotFound, "partition not found");
    }
    case RpcOp::kPCreate: {
      if (req.name.empty() || req.name.size() > kMaxPartitionNameBytes) {
        return ErrorResp(ErrorCode::kInvalidArgument, "bad partition name");
      }
      if (req.object == kFirstUserObjectId || !map_.Contains(req.object)) {
        return ErrorResp(ErrorCode::kNotFound, "partition target does not exist");
      }
      auto table = PTabLoad(ctx, std::nullopt);
      if (!table.ok()) return StatusResp(table.status());
      for (const auto& e : *table) {
        if (e.first == req.name) {
          return ErrorResp(ErrorCode::kAlreadyExists, "partition name in use");
        }
      }
      table->emplace_back(req.name, req.object);
      return StatusResp(PTabStore(ctx, *table));
    }
    case RpcOp::kPDelete: {
      auto table = PTabLoad(ctx, std::nullopt);
      if (!table.ok()) return StatusResp(table.status());
      auto it = std::find_if(table->begin(), table->end(),
                             [&](const auto& e) { return e.first == req.name; });
      if (it == table->end()) {
        return ErrorResp(ErrorCode::kNotFound, "partition not found");
      }
      table->erase(it);
      return StatusResp(PTabStore(ctx, *table));
    }
    default:
      return ErrorResp(ErrorCode::kInternal, "not a partition op");
  }
}

// ---------------------------------------------------------------------------
// Routing: one client request -> shard sub-ops
// ---------------------------------------------------------------------------

ShardRouter::SubPlan ShardRouter::PlanSub(RpcRequest req, BatchCtx& ctx) {
  SubPlan plan;
  switch (req.op) {
    case RpcOp::kCreate: {
      uint32_t s = map_.NextCreateDataShard();
      if (!Healthy(s)) {
        plan.resp = ErrorResp(ErrorCode::kUnavailable,
                              "object's home shard is down; creates resume after rebuild");
        return plan;
      }
      ShardMap::CreateActions a = map_.AllocateCreate();
      map_dirty_ = true;
      // Data create first: a failure here rolls the allocation back with no
      // physical side effects anywhere.
      FlushShard(ctx, s);
      RpcRequest dc;
      dc.op = RpcOp::kCreate;
      dc.creds = req.creds;
      dc.data = req.data;
      RpcResponse dresp = SendShardOrError(s, std::move(dc));
      if (!dresp.ok()) {
        map_.UndoCreate(a);
        plan.resp = std::move(dresp);
        return plan;
      }
      if (dresp.value != a.data_backend) {
        plan.resp = ErrorResp(ErrorCode::kInternal, "array id lockstep violated");
        return plan;
      }
      SimTime now = clock_->Now();
      LaneImage lane;
      lane.gid = a.gid;
      lane.live = true;
      lane.create_time = now;
      lane.modify_time = now;
      lane.owner = req.creds.user;
      lane.attrs = req.data;
      lane_cache_[a.gid] = lane;
      if (a.group >= 0) {
        if (a.opens_group) {
          if (Healthy(a.parity_shard)) {
            RpcRequest pc;
            pc.op = RpcOp::kCreate;
            pc.creds = admin_;
            RpcResponse presp = SendShardOrError(a.parity_shard, std::move(pc));
            if (!presp.ok() || presp.value != a.parity_backend) {
              ++stats_.parity_skips;  // group unprotected until repair/rebuild
            }
          } else {
            ++stats_.parity_skips;
            if (state_[a.parity_shard] == ShardState::kRebuilding && rebuild_ != nullptr) {
              rebuild_->NoteDirtyParity(a.group);
            }
          }
        }
        const ShardMap::GidInfo* info = map_.Find(a.gid);
        QueueLaneWrite(ctx, *info, lane);
      }
      plan.resp.value = a.gid;
      return plan;
    }

    case RpcOp::kSync: {
      plan.kind = SubPlan::kSyncFan;
      for (uint32_t s = 0; s < eps_.size(); ++s) {
        if (!Healthy(s)) continue;  // a rebuilding spare is synced per tick
        if (map_dirty_) {
          PersistMapTo(ctx, s);
        }
        RpcRequest sync;
        sync.op = RpcOp::kSync;
        sync.creds = req.creds;
        size_t idx = Enqueue(ctx, s, std::move(sync), /*maint=*/false, -1);
        plan.fan.emplace_back(s, idx);
      }
      map_dirty_ = false;
      return plan;
    }

    case RpcOp::kFlush:
    case RpcOp::kSetWindow: {
      FlushAll(ctx);
      Status merged = Status::Ok();
      for (uint32_t s = 0; s < eps_.size(); ++s) {
        if (state_[s] == ShardState::kDead) continue;
        RpcRequest sub = req;
        Status st = SendShardOrError(s, std::move(sub)).ToStatus();
        if (!st.ok() && merged.ok()) merged = st;
      }
      plan.resp = StatusResp(merged);
      return plan;
    }

    case RpcOp::kPCreate:
    case RpcOp::kPDelete:
    case RpcOp::kPList:
    case RpcOp::kPMount: {
      FlushAll(ctx);
      plan.resp = PartitionOp(req, ctx);
      return plan;
    }

    case RpcOp::kAuditChallenge: {
      plan.resp = ErrorResp(
          ErrorCode::kUnimplemented,
          "audit chains are per drive: challenge each shard's endpoint directly");
      return plan;
    }

    default:
      break;
  }

  // Object-addressed ops.
  const ShardMap::GidInfo* info = map_.Find(req.object);
  if (info == nullptr) {
    plan.resp = ErrorResp(ErrorCode::kNotFound, "unknown object id");
    return plan;
  }
  uint32_t s = info->shard;
  bool direct = Healthy(s);
  if (direct && req.at.has_value() && IsTimeGatedReadOp(req.op) &&
      *req.at < rebuilt_since_[s]) {
    direct = false;  // pre-rebuild history lives only in the parity object
  }
  if (!direct) {
    // The degraded path reads parity and sibling members immediately, so the
    // queues must drain first to preserve op order.
    FlushAll(ctx);
    plan.resp = DegradedOp(req, *info);
    return plan;
  }

  switch (req.op) {
    case RpcOp::kRead:
    case RpcOp::kGetAttr:
    case RpcOp::kGetAclByUser:
    case RpcOp::kGetAclByIndex:
    case RpcOp::kGetVersionList:
    case RpcOp::kFlushObject:
    case RpcOp::kSetAcl: {
      // Pure routing: translate the object id and preserve caller creds.
      // (SetAcl has no parity mirror: degraded mode authenticates owners
      // only, a documented §13 limitation.)
      RpcRequest sub = std::move(req);
      sub.object = info->backend;
      plan.kind = SubPlan::kDirect;
      plan.shard = s;
      plan.idx = Enqueue(ctx, s, std::move(sub), /*maint=*/false, -1);
      return plan;
    }
    case RpcOp::kWrite:
    case RpcOp::kXorWrite:
    case RpcOp::kAppend:
    case RpcOp::kTruncate:
    case RpcOp::kDelete:
    case RpcOp::kSetAttr:
      break;
    default:
      plan.resp = ErrorResp(ErrorCode::kInvalidArgument, "unroutable rpc op");
      return plan;
  }

  // Mutations: route the data sub-op, then queue the parity delta.
  if (lane_cache_.find(req.object) == lane_cache_.end()) {
    FlushShard(ctx, s);  // cold lane load reads the data shard
  }
  auto lane_r = EnsureLane(req.object);
  if (!lane_r.ok()) {
    plan.resp = StatusResp(lane_r.status());
    return plan;
  }
  LaneImage lane = **lane_r;
  const bool parity_live = info->group >= 0 && Healthy(map_.group(info->group).parity_shard);
  SimTime now = clock_->Now();
  uint64_t xor_offset = 0;
  Bytes delta;

  switch (req.op) {
    case RpcOp::kWrite: {
      xor_offset = req.offset;
      delta = req.data;
      uint64_t end = req.offset + req.data.size();
      uint64_t overlap_end = std::min(end, lane.size);
      if (parity_live && req.offset < overlap_end) {
        // Overwrite: the parity delta is new^old, which needs the current
        // bytes. Drain this shard's queue so the read sees them applied.
        FlushShard(ctx, s);
        RpcRequest old_read;
        old_read.op = RpcOp::kRead;
        old_read.creds = admin_;
        old_read.object = info->backend;
        old_read.offset = req.offset;
        old_read.length = overlap_end - req.offset;
        RpcResponse oresp = SendShardOrError(s, std::move(old_read));
        if (!oresp.ok()) {
          plan.resp = std::move(oresp);
          return plan;
        }
        for (size_t i = 0; i < oresp.data.size(); ++i) {
          delta[i] = static_cast<uint8_t>(delta[i] ^ oresp.data[i]);
        }
      }
      lane.size = std::max(lane.size, end);
      break;
    }
    case RpcOp::kXorWrite: {
      xor_offset = req.offset;
      delta = req.data;  // XOR deltas compose without reading old bytes
      lane.size = std::max(lane.size, req.offset + req.data.size());
      break;
    }
    case RpcOp::kAppend: {
      xor_offset = lane.size;
      delta = req.data;  // appends land past EOF: old bytes are zeros
      lane.size += req.data.size();
      break;
    }
    case RpcOp::kTruncate: {
      if (parity_live && req.length < lane.size) {
        FlushShard(ctx, s);
        RpcRequest tail_read;
        tail_read.op = RpcOp::kRead;
        tail_read.creds = admin_;
        tail_read.object = info->backend;
        tail_read.offset = req.length;
        tail_read.length = lane.size - req.length;
        RpcResponse tresp = SendShardOrError(s, std::move(tail_read));
        if (!tresp.ok()) {
          plan.resp = std::move(tresp);
          return plan;
        }
        xor_offset = req.length;
        delta = std::move(tresp.data);  // XOR the cut tail back out of parity
      }
      lane.size = req.length;
      break;
    }
    case RpcOp::kDelete: {
      if (parity_live && lane.live && lane.size > 0) {
        FlushShard(ctx, s);
        RpcRequest full_read;
        full_read.op = RpcOp::kRead;
        full_read.creds = admin_;
        full_read.object = info->backend;
        full_read.offset = 0;
        full_read.length = lane.size;
        RpcResponse fresp = SendShardOrError(s, std::move(full_read));
        if (!fresp.ok()) {
          plan.resp = std::move(fresp);
          return plan;
        }
        xor_offset = 0;
        delta = std::move(fresp.data);  // remove the content from parity
      }
      lane.live = false;
      lane.size = 0;
      break;
    }
    case RpcOp::kSetAttr: {
      lane.attrs = req.data;
      break;
    }
    default:
      break;
  }
  lane.modify_time = now;

  RpcRequest sub = std::move(req);
  ObjectId gid = sub.object;
  sub.object = info->backend;
  plan.kind = SubPlan::kDirect;
  plan.shard = s;
  plan.gid = gid;
  plan.repair_group = parity_live ? info->group : -1;
  plan.idx = Enqueue(ctx, s, std::move(sub), /*maint=*/false, -1);
  QueueParityDelta(ctx, *info, xor_offset, std::move(delta), lane);
  lane_cache_[gid] = std::move(lane);
  return plan;
}

RpcResponse ShardRouter::ResolvePlan(SubPlan& plan, BatchCtx& ctx) {
  switch (plan.kind) {
    case SubPlan::kImmediate:
      return std::move(plan.resp);
    case SubPlan::kDirect: {
      S4_CHECK(plan.shard < ctx.results.size() && plan.idx < ctx.results[plan.shard].size());
      RpcResponse r = ctx.results[plan.shard][plan.idx];
      if (!r.ok()) {
        // The data sub-op failed after its parity delta was queued (e.g. an
        // ACL denial mid-batch): recompute the group from the members' actual
        // contents so parity never drifts.
        if (plan.gid != 0) lane_cache_.erase(plan.gid);
        // A repair failure leaves parity stale, which rebuild recovers from.
        if (plan.repair_group >= 0) (void)RepairParityGroup(plan.repair_group);
      }
      return r;
    }
    case SubPlan::kSyncFan: {
      Status merged = Status::Ok();
      for (const auto& f : plan.fan) {
        S4_CHECK(f.first < ctx.results.size() && f.second < ctx.results[f.first].size());
        Status st = ctx.results[f.first][f.second].ToStatus();
        if (!st.ok() && merged.ok()) merged = st;
      }
      return StatusResp(merged);
    }
  }
  return ErrorResp(ErrorCode::kInternal, "unresolvable plan");
}

Result<RpcResponse> ShardRouter::Call(RpcRequest req) {
  req.creds = creds_;
  BatchCtx ctx;
  SubPlan plan = PlanSub(std::move(req), ctx);
  FlushAll(ctx);
  return ResolvePlan(plan, ctx);
}

Result<std::vector<RpcResponse>> ShardRouter::CallBatch(std::vector<RpcRequest> reqs) {
  if (reqs.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  BatchCtx ctx;
  std::vector<SubPlan> plans;
  plans.reserve(reqs.size());
  for (RpcRequest& req : reqs) {
    req.creds = creds_;
    plans.push_back(PlanSub(std::move(req), ctx));
  }
  FlushAll(ctx);
  std::vector<RpcResponse> out;
  out.reserve(plans.size());
  for (SubPlan& plan : plans) {
    out.push_back(ResolvePlan(plan, ctx));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Array management
// ---------------------------------------------------------------------------

Status ShardRouter::AddShard(ShardEndpoint ep) {
  for (ShardState st : state_) {
    if (st != ShardState::kHealthy) {
      return Status::FailedPrecondition("grow requires a fully healthy array");
    }
  }
  if (ep.drive == nullptr || ep.transport == nullptr) {
    return Status::InvalidArgument("shard endpoint incomplete");
  }
  if (ep.drive->PeekNextObjectId() != kFirstUserObjectId) {
    return Status::FailedPrecondition("AddShard requires a freshly formatted drive");
  }
  uint32_t n = static_cast<uint32_t>(eps_.size());
  eps_.push_back(ep);
  clients_.push_back(std::make_unique<S4Client>(ep.transport, admin_));
  state_.push_back(ShardState::kHealthy);
  rebuilt_since_.push_back(0);
  busy_.push_back(0);
  RpcRequest create;
  create.op = RpcOp::kCreate;
  create.creds = admin_;
  RpcResponse resp = SendShardOrError(n, std::move(create));
  S4_RETURN_IF_ERROR(resp.ToStatus());
  if (resp.value != kFirstUserObjectId) {
    return Status::Internal("shard map object landed at an unexpected id");
  }
  S4_RETURN_IF_ERROR(map_.AddEpoch(n + 1));
  map_dirty_ = true;
  // The growth epoch must be durable everywhere before any gid routes to the
  // new shard.
  return PersistMapEverywhere();
}

Status ShardRouter::AttachSpare(size_t shard, ShardEndpoint spare) {
  if (shard >= eps_.size() || state_[shard] != ShardState::kDead) {
    return Status::FailedPrecondition("only a failed shard can take a spare");
  }
  if (spare.drive == nullptr || spare.transport == nullptr) {
    return Status::InvalidArgument("shard endpoint incomplete");
  }
  eps_[shard] = spare;
  clients_[shard] = std::make_unique<S4Client>(spare.transport, admin_);
  state_[shard] = ShardState::kRebuilding;
  rebuild_ = std::make_unique<RebuildScheduler>(this, static_cast<uint32_t>(shard));
  rebuild_progress_ = rebuild_->progress();
  return Status::Ok();
}

Result<bool> ShardRouter::RebuildTick(uint64_t budget_bytes) {
  if (rebuild_ == nullptr) {
    return Status::FailedPrecondition("no rebuild in progress");
  }
  auto done = rebuild_->Tick(budget_bytes);
  rebuild_progress_ = rebuild_->progress();
  if (!done.ok()) {
    return done;
  }
  if (*done) {
    uint32_t s = rebuild_progress_.shard;
    state_[s] = ShardState::kHealthy;
    // Direct time-based reads below this point must keep using parity: the
    // spare's own version history starts at the rebuild.
    rebuilt_since_[s] = clock_->Now();
    rebuild_.reset();
  }
  return done;
}

Status ShardRouter::MaintainShards() {
  for (uint32_t s = 0; s < eps_.size(); ++s) {
    if (state_[s] == ShardState::kDead) continue;
    S4Drive* d = eps_[s].drive;
    if (!d->CleanerNeeded()) continue;
    SimTime t0 = clock_->Now();
    Status st = d->RunCleanerPass(2).status();
    busy_[s] += clock_->Now() - t0;
    S4_RETURN_IF_ERROR(st);
  }
  return Status::Ok();
}

}  // namespace s4
