// Multi-device coordination (paper section 6, "Multi-device coordination").
//
// MirroredDrive replicates every mutation synchronously across N self-
// securing drives that share one simulation clock, so version timestamps —
// and therefore time-based reads — agree across replicas. Reads are served
// by the lowest-numbered healthy replica with automatic failover; a failed
// replica can be replaced and rebuilt from a survivor.
//
// Coordinated history: because replicas see identical op sequences with
// identical timestamps, any version readable on one replica is readable at
// the same time coordinate on every replica — the paper's requirement that
// "recovery operations must also coordinate old versions". A rebuilt
// replacement holds current state only; its history pool fills from the
// rebuild point onward (pre-failure history survives on the other
// replicas).
#ifndef S4_SRC_CLUSTER_MIRRORED_DRIVE_H_
#define S4_SRC_CLUSTER_MIRRORED_DRIVE_H_

#include <memory>
#include <vector>

#include "src/drive/s4_drive.h"

namespace s4 {

class MirroredDrive {
 public:
  // All drives must share the same SimClock and start freshly formatted (so
  // their ObjectId counters align).
  explicit MirroredDrive(std::vector<S4Drive*> replicas);

  size_t replica_count() const { return replicas_.size(); }
  bool healthy(size_t index) const { return healthy_[index]; }
  size_t healthy_count() const;

  // Marks a replica failed (its device died); subsequent ops skip it.
  void FailReplica(size_t index);
  // Replaces a failed replica with a freshly formatted drive and rebuilds
  // the current state of every live object from a healthy peer. `admin` must
  // carry the admin key (rebuild reads bypass ACLs).
  Status ReplaceReplica(size_t index, S4Drive* replacement, const Credentials& admin);

  // --- mirrored S4 operations (the subset file systems need) ---
  Result<ObjectId> Create(const Credentials& creds, Bytes opaque_attrs);
  Status Delete(const Credentials& creds, ObjectId id);
  Status Write(const Credentials& creds, ObjectId id, uint64_t offset, ByteSpan data);
  Result<uint64_t> Append(const Credentials& creds, ObjectId id, ByteSpan data);
  Status Truncate(const Credentials& creds, ObjectId id, uint64_t new_size);
  Status SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs);
  Status SetAcl(const Credentials& creds, ObjectId id, AclEntry entry);
  Status Sync(const Credentials& creds);

  // Reads go to one healthy replica (failover on error).
  Result<Bytes> Read(const Credentials& creds, ObjectId id, uint64_t offset, uint64_t length,
                     std::optional<SimTime> at = std::nullopt);
  Result<ObjectAttrs> GetAttr(const Credentials& creds, ObjectId id,
                              std::optional<SimTime> at = std::nullopt);
  Result<std::vector<VersionInfo>> GetVersionList(const Credentials& creds, ObjectId id);

  // Diagnosis helper: true if all healthy replicas return identical bytes
  // for this object at `at` (detects a divergent / tampered replica).
  Result<bool> ReplicasAgree(const Credentials& admin, ObjectId id,
                             std::optional<SimTime> at = std::nullopt);

 private:
  // Applies a mutation to every healthy replica; a replica that errors is
  // failed (split-brain is avoided by the shared clock + deterministic ids).
  template <typename Fn>
  Status Mutate(Fn&& fn);
  Result<size_t> PickReadReplica() const;

  std::vector<S4Drive*> replicas_;
  std::vector<bool> healthy_;
};

}  // namespace s4

#endif  // S4_SRC_CLUSTER_MIRRORED_DRIVE_H_
