#include "src/cluster/striped_volume.h"

#include "src/util/check.h"

namespace s4 {

StripedVolume::StripedVolume(std::vector<S4Drive*> drives) : drives_(std::move(drives)) {
  S4_CHECK(!drives_.empty());
  S4_CHECK(drives_.size() < 256);
}

Result<S4Drive*> StripedVolume::Route(ObjectId id) const {
  size_t drive = DriveOf(id);
  if (drive >= drives_.size()) {
    return Status::NotFound("no such drive in volume");
  }
  return drives_[drive];
}

Result<ObjectId> StripedVolume::Create(const Credentials& creds, Bytes opaque_attrs) {
  // Place on the drive with the least occupied log; ties go round-robin, so
  // versioning load spreads across the cluster's shared history pool.
  size_t best = next_drive_;
  double best_util = 2.0;
  for (size_t probe = 0; probe < drives_.size(); ++probe) {
    size_t i = (next_drive_ + probe) % drives_.size();
    double util = drives_[i]->SpaceUtilization();
    if (util + 0.02 < best_util) {
      best_util = util;
      best = i;
    }
  }
  next_drive_ = (best + 1) % drives_.size();
  S4_ASSIGN_OR_RETURN(ObjectId backend_id, drives_[best]->Create(creds, opaque_attrs));
  S4_CHECK(backend_id < (1ull << 56));
  return (static_cast<ObjectId>(best) << 56) | backend_id;
}

Status StripedVolume::Delete(const Credentials& creds, ObjectId id) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->Delete(creds, BackendOf(id));
}

Result<Bytes> StripedVolume::Read(const Credentials& creds, ObjectId id, uint64_t offset,
                                  uint64_t length, std::optional<SimTime> at) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->Read(creds, BackendOf(id), offset, length, at);
}

Status StripedVolume::Write(const Credentials& creds, ObjectId id, uint64_t offset,
                            ByteSpan data) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->Write(creds, BackendOf(id), offset, data);
}

Result<uint64_t> StripedVolume::Append(const Credentials& creds, ObjectId id, ByteSpan data) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->Append(creds, BackendOf(id), data);
}

Status StripedVolume::Truncate(const Credentials& creds, ObjectId id, uint64_t new_size) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->Truncate(creds, BackendOf(id), new_size);
}

Result<ObjectAttrs> StripedVolume::GetAttr(const Credentials& creds, ObjectId id,
                                           std::optional<SimTime> at) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->GetAttr(creds, BackendOf(id), at);
}

Status StripedVolume::SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->SetAttr(creds, BackendOf(id), std::move(opaque_attrs));
}

Result<std::vector<VersionInfo>> StripedVolume::GetVersionList(const Credentials& creds,
                                                               ObjectId id) {
  S4_ASSIGN_OR_RETURN(S4Drive * drive, Route(id));
  return drive->GetVersionList(creds, BackendOf(id));
}

Status StripedVolume::Sync(const Credentials& creds) {
  for (S4Drive* drive : drives_) {
    S4_RETURN_IF_ERROR(drive->Sync(creds));
  }
  return Status::Ok();
}

uint64_t StripedVolume::HistoryPoolBytes() const {
  uint64_t total = 0;
  for (const S4Drive* drive : drives_) {
    total += drive->HistoryPoolBytes();
  }
  return total;
}

Status StripedVolume::RunCleanerPasses(uint32_t max_compactions) {
  for (S4Drive* drive : drives_) {
    S4_RETURN_IF_ERROR(drive->RunCleanerPass(max_compactions).status());
  }
  return Status::Ok();
}

}  // namespace s4
