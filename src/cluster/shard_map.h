// ShardMap: the deterministic object->shard map of a multi-drive S4 array.
//
// The router mints array-visible object ids ("gids") from a single monotone
// counter. A gid's home shard is a pure function of the persisted map state:
// the epoch covering the gid supplies a small slot table, indexed by a stable
// hash of the gid. Growing the array appends a new epoch at the current gid
// watermark — old gids keep routing through the epoch that placed them, so no
// data moves.
//
// Backend ids (what each drive's own allocator returns) are never persisted
// per object. S4Drive allocates ids sequentially, so the backend id of every
// object is reproducible by replaying the create sequence: gids in ascending
// order, with each parity-group open interleaving one parity-object create on
// the group's parity shard. ShardMap::Decode performs that replay, which is
// also what makes rebuild possible — CreationOrder() hands the rebuilder the
// exact create sequence a lost shard must be re-issued.
//
// Parity placement is part of the same deterministic replay: each create in
// an N-shard epoch joins the oldest open XOR group that has a free lane and
// no member (or parity) on the data shard; when none fits, a new group opens
// with its parity object on a rotating shard.
#ifndef S4_SRC_CLUSTER_SHARD_MAP_H_
#define S4_SRC_CLUSTER_SHARD_MAP_H_

#include <array>
#include <unordered_map>
#include <vector>

#include "src/object/types.h"
#include "src/util/status.h"

namespace s4 {

class ShardMap {
 public:
  // Slot-table width per epoch. Small enough to persist on every shard,
  // wide enough to balance a handful of drives.
  static constexpr uint32_t kSlots = 64;
  // Upper bound on members per parity group (so lane directories have a
  // fixed layout). Supports arrays up to kMaxLanes+1 shards.
  static constexpr uint32_t kMaxLanes = 8;

  struct GidInfo {
    ObjectId gid = 0;
    uint32_t shard = 0;       // data shard index
    ObjectId backend = 0;     // backend id on the data shard
    int32_t group = -1;       // parity group index, -1 = unprotected
    int32_t lane = -1;        // lane within the group
  };

  struct Group {
    uint32_t parity_shard = 0;
    ObjectId parity_backend = 0;  // backend id of the parity object
    uint32_t epoch = 0;
    std::vector<ObjectId> members;  // lane order
  };

  // Everything one create decides, returned so the caller can issue the
  // physical creates (and undo the allocation if the data create fails).
  struct CreateActions {
    ObjectId gid = 0;
    uint32_t data_shard = 0;
    ObjectId data_backend = 0;
    int32_t group = -1;
    int32_t lane = -1;
    bool opens_group = false;     // a parity object must be created too
    uint32_t parity_shard = 0;    // valid when group >= 0
    ObjectId parity_backend = 0;  // valid when group >= 0
    // Undo bookkeeping (never persisted).
    uint32_t prev_rotor = 0;
    int32_t closed_group_pos = -1;  // open-list position if this create filled the group
  };

  // One entry in a shard's deterministic create sequence.
  struct ShardObjectRef {
    ObjectId gid = 0;    // data objects only
    int32_t group = -1;  // parity objects only (index into groups)
    bool is_parity = false;
  };

  static ShardMap Fresh(uint32_t shard_count, bool parity_enabled);
  // Decodes epochs + the gid floor, then replays the create sequence to
  // rebuild per-gid and per-group state.
  static Result<ShardMap> Decode(ByteSpan bytes);
  Bytes Encode() const;

  uint32_t shard_count() const { return epochs_.back().shard_count; }
  bool parity_enabled() const { return parity_enabled_; }
  ObjectId next_gid() const { return next_gid_; }
  bool Contains(ObjectId gid) const { return gids_.count(gid) != 0; }

  uint32_t ShardOf(ObjectId gid) const;
  // Where the next create's data object would land (health pre-check).
  uint32_t NextCreateDataShard() const { return ShardOf(next_gid_); }

  // Commits the next create: advances the gid counter, the per-shard backend
  // cursors, and parity-group state.
  CreateActions AllocateCreate();
  // Rolls back the immediately preceding AllocateCreate (no other allocation
  // may have happened in between). Used when the physical data create fails.
  void UndoCreate(const CreateActions& a);

  const GidInfo* Find(ObjectId gid) const;
  const Group& group(int32_t g) const { return groups_[static_cast<size_t>(g)]; }
  size_t group_count() const { return groups_.size(); }

  // Appends a growth epoch at the current gid watermark.
  Status AddEpoch(uint32_t new_shard_count);

  // The exact create sequence of one shard (excluding its map object, which
  // is always the shard's first create).
  const std::vector<ShardObjectRef>& CreationOrder(uint32_t shard) const {
    return creation_order_[shard];
  }
  // The backend id the shard's allocator must hand out next if it is in
  // lockstep with this map.
  ObjectId ExpectedNextBackend(uint32_t shard) const { return next_backend_[shard]; }

 private:
  struct Epoch {
    ObjectId from_gid = 0;
    uint32_t shard_count = 0;
    std::array<uint8_t, kSlots> slots{};
  };

  ShardMap() = default;
  size_t EpochIndexOf(ObjectId gid) const;
  void InitEpochState();

  std::vector<Epoch> epochs_;
  bool parity_enabled_ = false;
  ObjectId next_gid_ = kFirstUserObjectId;

  // Replay-derived state (not persisted).
  std::vector<ObjectId> next_backend_;
  std::unordered_map<ObjectId, GidInfo> gids_;
  std::vector<Group> groups_;
  std::vector<uint32_t> rotor_;                    // per epoch
  std::vector<std::vector<int32_t>> open_groups_;  // per epoch, FIFO
  std::vector<std::vector<ShardObjectRef>> creation_order_;  // per shard
};

}  // namespace s4

#endif  // S4_SRC_CLUSTER_SHARD_MAP_H_
