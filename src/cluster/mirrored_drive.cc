#include "src/cluster/mirrored_drive.h"

#include "src/util/check.h"

namespace s4 {

MirroredDrive::MirroredDrive(std::vector<S4Drive*> replicas)
    : replicas_(std::move(replicas)), healthy_(replicas_.size(), true) {
  S4_CHECK(!replicas_.empty());
}

size_t MirroredDrive::healthy_count() const {
  size_t n = 0;
  for (bool h : healthy_) {
    n += h ? 1 : 0;
  }
  return n;
}

void MirroredDrive::FailReplica(size_t index) {
  S4_CHECK(index < replicas_.size());
  healthy_[index] = false;
}

Result<size_t> MirroredDrive::PickReadReplica() const {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (healthy_[i]) {
      return i;
    }
  }
  return Status::FailedPrecondition("no healthy replica");
}

template <typename Fn>
Status MirroredDrive::Mutate(Fn&& fn) {
  bool any = false;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!healthy_[i]) {
      continue;
    }
    Status s = fn(replicas_[i]);
    if (!s.ok()) {
      // Client-caused failures (ACL, not-found) are consistent across
      // replicas — report the first. Device-level failures fail the replica.
      if (s.code() == ErrorCode::kOutOfSpace || s.code() == ErrorCode::kDataCorruption ||
          s.code() == ErrorCode::kInternal) {
        healthy_[i] = false;
        continue;
      }
      return s;
    }
    any = true;
  }
  return any ? Status::Ok() : Status::FailedPrecondition("no healthy replica");
}

Result<ObjectId> MirroredDrive::Create(const Credentials& creds, Bytes opaque_attrs) {
  ObjectId id = kInvalidObjectId;
  S4_RETURN_IF_ERROR(Mutate([&](S4Drive* drive) -> Status {
    auto result = drive->Create(creds, opaque_attrs);
    if (!result.ok()) {
      return result.status();
    }
    // Freshly formatted replicas allocate ids in lockstep; a mismatch means
    // the mirror set diverged and must not be written further.
    if (id == kInvalidObjectId) {
      id = *result;
    } else {
      S4_CHECK(id == *result);
    }
    return Status::Ok();
  }));
  return id;
}

Status MirroredDrive::Delete(const Credentials& creds, ObjectId id) {
  return Mutate([&](S4Drive* drive) { return drive->Delete(creds, id); });
}

Status MirroredDrive::Write(const Credentials& creds, ObjectId id, uint64_t offset,
                            ByteSpan data) {
  return Mutate([&](S4Drive* drive) { return drive->Write(creds, id, offset, data); });
}

Result<uint64_t> MirroredDrive::Append(const Credentials& creds, ObjectId id, ByteSpan data) {
  uint64_t size = 0;
  S4_RETURN_IF_ERROR(Mutate([&](S4Drive* drive) -> Status {
    auto result = drive->Append(creds, id, data);
    if (!result.ok()) {
      return result.status();
    }
    size = *result;
    return Status::Ok();
  }));
  return size;
}

Status MirroredDrive::Truncate(const Credentials& creds, ObjectId id, uint64_t new_size) {
  return Mutate([&](S4Drive* drive) { return drive->Truncate(creds, id, new_size); });
}

Status MirroredDrive::SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs) {
  return Mutate([&](S4Drive* drive) { return drive->SetAttr(creds, id, opaque_attrs); });
}

Status MirroredDrive::SetAcl(const Credentials& creds, ObjectId id, AclEntry entry) {
  return Mutate([&](S4Drive* drive) { return drive->SetAcl(creds, id, entry); });
}

Status MirroredDrive::Sync(const Credentials& creds) {
  return Mutate([&](S4Drive* drive) { return drive->Sync(creds); });
}

Result<Bytes> MirroredDrive::Read(const Credentials& creds, ObjectId id, uint64_t offset,
                                  uint64_t length, std::optional<SimTime> at) {
  Status last = Status::FailedPrecondition("no healthy replica");
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!healthy_[i]) {
      continue;
    }
    auto result = replicas_[i]->Read(creds, id, offset, length, at);
    if (result.ok() || result.status().code() != ErrorCode::kDataCorruption) {
      return result;  // success, or a consistent client-visible error
    }
    // Corrupt replica: fail it and try the next.
    healthy_[i] = false;
    last = result.status();
  }
  return last;
}

Result<ObjectAttrs> MirroredDrive::GetAttr(const Credentials& creds, ObjectId id,
                                           std::optional<SimTime> at) {
  S4_ASSIGN_OR_RETURN(size_t index, PickReadReplica());
  return replicas_[index]->GetAttr(creds, id, at);
}

Result<std::vector<VersionInfo>> MirroredDrive::GetVersionList(const Credentials& creds,
                                                               ObjectId id) {
  S4_ASSIGN_OR_RETURN(size_t index, PickReadReplica());
  return replicas_[index]->GetVersionList(creds, id);
}

Result<bool> MirroredDrive::ReplicasAgree(const Credentials& admin, ObjectId id,
                                          std::optional<SimTime> at) {
  bool have_reference = false;
  Bytes reference;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!healthy_[i]) {
      continue;
    }
    auto attrs = replicas_[i]->GetAttr(admin, id, at);
    if (!attrs.ok()) {
      return attrs.status();
    }
    S4_ASSIGN_OR_RETURN(Bytes content, replicas_[i]->Read(admin, id, 0, attrs->size, at));
    if (!have_reference) {
      reference = std::move(content);
      have_reference = true;
    } else if (content != reference) {
      return false;
    }
  }
  return true;
}

Status MirroredDrive::ReplaceReplica(size_t index, S4Drive* replacement,
                                     const Credentials& admin) {
  S4_CHECK(index < replicas_.size());
  S4_CHECK(!healthy_[index]);
  S4_ASSIGN_OR_RETURN(size_t source_index, PickReadReplica());
  S4Drive* source = replicas_[source_index];
  if (!source->IsAdmin(admin)) {
    return Status::PermissionDenied("rebuild requires administrative access");
  }

  // Recreate every live object with its current contents. Replicas stay
  // interchangeable because ids are reproduced: objects are recreated in
  // ascending id order on a freshly formatted drive whose allocator starts
  // at the same origin, with tombstones burning the ids of deleted or
  // aged-out objects. Pre-failure history cannot be recreated (writes stamp
  // the current time); it remains available on the surviving replicas.
  S4_ASSIGN_OR_RETURN(auto partitions, source->PList(admin));
  ObjectId probe = kFirstUserObjectId;
  const ObjectId end = source->PeekNextObjectId();
  while (probe < end) {
    auto attrs = source->GetAttr(admin, probe);
    if (!attrs.ok()) {
      if (attrs.status().code() == ErrorCode::kNotFound ||
          attrs.status().code() == ErrorCode::kFailedPrecondition) {
        // Aged-out or deleted object: reserve its id on the replacement with
        // a create+delete tombstone so later ids stay aligned.
        auto placeholder = replacement->Create(admin, {});
        if (placeholder.ok()) {
          S4_CHECK(*placeholder == probe);
          S4_RETURN_IF_ERROR(replacement->Delete(admin, probe));
        }
        ++probe;
        continue;
      }
      return attrs.status();
    }
    S4_ASSIGN_OR_RETURN(Bytes content, source->Read(admin, probe, 0, attrs->size));
    S4_ASSIGN_OR_RETURN(ObjectId new_id, replacement->Create(admin, attrs->opaque));
    S4_CHECK(new_id == probe);
    if (!content.empty()) {
      S4_RETURN_IF_ERROR(replacement->Write(admin, probe, 0, content));
    }
    // Mirror the ACL table.
    for (uint32_t acl_index = 0;; ++acl_index) {
      auto acl_entry = source->GetAclByIndex(admin, probe, acl_index);
      if (!acl_entry.ok()) {
        break;
      }
      S4_RETURN_IF_ERROR(replacement->SetAcl(admin, probe, *acl_entry));
    }
    ++probe;
  }
  for (const auto& [name, object] : partitions) {
    S4_RETURN_IF_ERROR(replacement->PCreate(admin, name, object));
  }
  S4_RETURN_IF_ERROR(replacement->Sync(admin));

  replicas_[index] = replacement;
  healthy_[index] = true;
  return Status::Ok();
}

}  // namespace s4
