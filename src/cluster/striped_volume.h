// StripedVolume (paper section 6): a cluster of self-securing drives that
// "maintain a single history pool and balance the load of versioning
// objects". Objects are placed whole on one drive at create time (object
// granularity keeps each version's blocks, journal chain, and audit trail on
// a single device); the volume id encodes the placement so routing needs no
// table. All drives share one clock, so time-based access works uniformly
// across the volume.
#ifndef S4_SRC_CLUSTER_STRIPED_VOLUME_H_
#define S4_SRC_CLUSTER_STRIPED_VOLUME_H_

#include <vector>

#include "src/drive/s4_drive.h"

namespace s4 {

class StripedVolume {
 public:
  explicit StripedVolume(std::vector<S4Drive*> drives);

  size_t drive_count() const { return drives_.size(); }

  // Volume ids carry the owning drive in the top byte.
  static size_t DriveOf(ObjectId volume_id) { return volume_id >> 56; }
  static ObjectId BackendOf(ObjectId volume_id) { return volume_id & ((1ull << 56) - 1); }

  Result<ObjectId> Create(const Credentials& creds, Bytes opaque_attrs);
  Status Delete(const Credentials& creds, ObjectId id);
  Result<Bytes> Read(const Credentials& creds, ObjectId id, uint64_t offset, uint64_t length,
                     std::optional<SimTime> at = std::nullopt);
  Status Write(const Credentials& creds, ObjectId id, uint64_t offset, ByteSpan data);
  Result<uint64_t> Append(const Credentials& creds, ObjectId id, ByteSpan data);
  Status Truncate(const Credentials& creds, ObjectId id, uint64_t new_size);
  Result<ObjectAttrs> GetAttr(const Credentials& creds, ObjectId id,
                              std::optional<SimTime> at = std::nullopt);
  Status SetAttr(const Credentials& creds, ObjectId id, Bytes opaque_attrs);
  Result<std::vector<VersionInfo>> GetVersionList(const Credentials& creds, ObjectId id);
  Status Sync(const Credentials& creds);

  // Aggregate history-pool occupancy across the cluster.
  uint64_t HistoryPoolBytes() const;
  // Runs a cleaning pass on every member drive.
  Status RunCleanerPasses(uint32_t max_compactions);

 private:
  Result<S4Drive*> Route(ObjectId id) const;

  std::vector<S4Drive*> drives_;
  size_t next_drive_ = 0;  // round-robin placement rotor
};

}  // namespace s4

#endif  // S4_SRC_CLUSTER_STRIPED_VOLUME_H_
