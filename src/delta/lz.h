// LZ77-style compressor (hash chains, 64KB window), used together with
// differencing to estimate achievable history-pool compaction (Figure 7).
#ifndef S4_SRC_DELTA_LZ_H_
#define S4_SRC_DELTA_LZ_H_

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace s4 {

// Compresses `input`. Incompressible data grows by at most a tiny framing
// overhead (stored-literal fallback).
Bytes LzCompress(ByteSpan input);

// Exact inverse of LzCompress.
Result<Bytes> LzDecompress(ByteSpan compressed);

}  // namespace s4

#endif  // S4_SRC_DELTA_LZ_H_
