// Cross-version binary differencing (Xdelta-style), used to compact old
// versions in the history pool (paper sections 4.2.2 and 5.2).
//
// ComputeDelta finds byte ranges of `target` that already exist in `source`
// using a rolling hash over fixed-size seeds, greedily extends matches in
// both directions, and emits a COPY/INSERT instruction stream. ApplyDelta
// reconstructs `target` exactly from `source` + delta.
#ifndef S4_SRC_DELTA_DELTA_H_
#define S4_SRC_DELTA_DELTA_H_

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace s4 {

// Computes a delta encoding of `target` relative to `source`. The result is
// never larger than an all-INSERT encoding (target size + small framing).
Bytes ComputeDelta(ByteSpan source, ByteSpan target);

// Reconstructs the target from the source and a delta produced by
// ComputeDelta. Fails with kDataCorruption on malformed input.
Result<Bytes> ApplyDelta(ByteSpan source, ByteSpan delta);

// Fraction of the target covered by COPY instructions (diagnostics).
Result<double> DeltaCopyFraction(ByteSpan delta);

}  // namespace s4

#endif  // S4_SRC_DELTA_DELTA_H_
