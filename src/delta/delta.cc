#include "src/delta/delta.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/util/codec.h"

namespace s4 {
namespace {

constexpr size_t kSeedSize = 16;        // rolling-hash window
constexpr uint32_t kDeltaMagic = 0x53344454;  // "S4DT"

enum class Instr : uint8_t { kCopy = 1, kInsert = 2 };

// Polynomial rolling hash over a kSeedSize window.
struct RollingHash {
  static constexpr uint64_t kBase = 1000000007ull;

  static uint64_t PowBase() {
    static const uint64_t kPow = [] {
      uint64_t p = 1;
      for (size_t i = 0; i + 1 < kSeedSize; ++i) {
        p *= kBase;
      }
      return p;
    }();
    return kPow;
  }

  static uint64_t Hash(const uint8_t* p) {
    uint64_t h = 0;
    for (size_t i = 0; i < kSeedSize; ++i) {
      h = h * kBase + p[i];
    }
    return h;
  }

  static uint64_t Roll(uint64_t h, uint8_t out, uint8_t in) {
    return (h - out * PowBase()) * kBase + in;
  }
};

}  // namespace

Bytes ComputeDelta(ByteSpan source, ByteSpan target) {
  Encoder enc(64 + target.size() / 8);
  enc.PutU32(kDeltaMagic);
  enc.PutVarint(target.size());

  // Index the source by seed hash (one offset per hash bucket; last wins —
  // simple and effective for version chains).
  std::unordered_map<uint64_t, size_t> index;
  if (source.size() >= kSeedSize) {
    uint64_t h = RollingHash::Hash(source.data());
    index[h] = 0;
    for (size_t i = 1; i + kSeedSize <= source.size(); ++i) {
      h = RollingHash::Roll(h, source[i - 1], source[i + kSeedSize - 1]);
      // Sparse indexing every 4 bytes keeps the table small on big inputs.
      if (i % 4 == 0) {
        index[h] = i;
      }
    }
  }

  size_t pos = 0;
  size_t pending_insert_start = 0;
  auto flush_insert = [&](size_t end) {
    if (end > pending_insert_start) {
      enc.PutU8(static_cast<uint8_t>(Instr::kInsert));
      enc.PutLengthPrefixed(target.subspan(pending_insert_start, end - pending_insert_start));
    }
  };

  if (target.size() >= kSeedSize && !index.empty()) {
    uint64_t h = RollingHash::Hash(target.data());
    size_t hash_pos = 0;  // h corresponds to target[hash_pos, hash_pos+seed)
    while (pos + kSeedSize <= target.size()) {
      // Advance the rolling hash to `pos`.
      while (hash_pos < pos) {
        h = RollingHash::Roll(h, target[hash_pos], target[hash_pos + kSeedSize]);
        ++hash_pos;
      }
      auto it = index.find(h);
      bool matched = false;
      if (it != index.end()) {
        size_t src = it->second;
        if (src + kSeedSize <= source.size() &&
            std::memcmp(source.data() + src, target.data() + pos, kSeedSize) == 0) {
          // Extend the match backwards into pending insert territory...
          size_t back = 0;
          while (src - back > 0 && pos - back > pending_insert_start &&
                 source[src - back - 1] == target[pos - back - 1]) {
            ++back;
          }
          // ...and forwards as far as it goes.
          size_t fwd = kSeedSize;
          while (src + fwd < source.size() && pos + fwd < target.size() &&
                 source[src + fwd] == target[pos + fwd]) {
            ++fwd;
          }
          flush_insert(pos - back);
          enc.PutU8(static_cast<uint8_t>(Instr::kCopy));
          enc.PutVarint(src - back);
          enc.PutVarint(back + fwd);
          pos += fwd;
          pending_insert_start = pos;
          matched = true;
          if (pos + kSeedSize <= target.size()) {
            h = RollingHash::Hash(target.data() + pos);
            hash_pos = pos;
          }
        }
      }
      if (!matched) {
        ++pos;
      }
    }
  }
  flush_insert(target.size());
  return enc.Take();
}

Result<Bytes> ApplyDelta(ByteSpan source, ByteSpan delta) {
  Decoder dec(delta);
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kDeltaMagic) {
    return Status::DataCorruption("bad delta magic");
  }
  S4_ASSIGN_OR_RETURN(uint64_t target_size, dec.Varint());
  Bytes out;
  out.reserve(target_size);
  while (!dec.done()) {
    S4_ASSIGN_OR_RETURN(uint8_t instr, dec.U8());
    if (instr == static_cast<uint8_t>(Instr::kCopy)) {
      S4_ASSIGN_OR_RETURN(uint64_t offset, dec.Varint());
      S4_ASSIGN_OR_RETURN(uint64_t length, dec.Varint());
      if (offset + length > source.size() || offset + length < offset) {
        return Status::DataCorruption("delta copy out of range");
      }
      out.insert(out.end(), source.begin() + offset, source.begin() + offset + length);
    } else if (instr == static_cast<uint8_t>(Instr::kInsert)) {
      S4_ASSIGN_OR_RETURN(Bytes literal, dec.LengthPrefixed());
      out.insert(out.end(), literal.begin(), literal.end());
    } else {
      return Status::DataCorruption("bad delta instruction");
    }
  }
  if (out.size() != target_size) {
    return Status::DataCorruption("delta target size mismatch");
  }
  return out;
}

Result<double> DeltaCopyFraction(ByteSpan delta) {
  Decoder dec(delta);
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kDeltaMagic) {
    return Status::DataCorruption("bad delta magic");
  }
  S4_ASSIGN_OR_RETURN(uint64_t target_size, dec.Varint());
  uint64_t copied = 0;
  while (!dec.done()) {
    S4_ASSIGN_OR_RETURN(uint8_t instr, dec.U8());
    if (instr == static_cast<uint8_t>(Instr::kCopy)) {
      S4_ASSIGN_OR_RETURN(uint64_t offset, dec.Varint());
      (void)offset;
      S4_ASSIGN_OR_RETURN(uint64_t length, dec.Varint());
      copied += length;
    } else {
      S4_ASSIGN_OR_RETURN(Bytes literal, dec.LengthPrefixed());
      (void)literal;
    }
  }
  return target_size == 0 ? 0.0 : static_cast<double>(copied) / target_size;
}

}  // namespace s4
