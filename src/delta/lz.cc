#include "src/delta/lz.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/util/codec.h"

namespace s4 {
namespace {

constexpr uint32_t kLzMagic = 0x53344C5A;  // "S4LZ"
constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kHashBits = 15;
constexpr size_t kMaxChain = 16;  // probes per position

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

enum class Token : uint8_t { kLiteral = 1, kMatch = 2 };

}  // namespace

Bytes LzCompress(ByteSpan input) {
  Encoder enc(16 + input.size() / 4);
  enc.PutU32(kLzMagic);
  enc.PutVarint(input.size());

  std::vector<int64_t> head(1 << kHashBits, -1);
  std::vector<int64_t> prev(input.size(), -1);

  size_t pos = 0;
  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      enc.PutU8(static_cast<uint8_t>(Token::kLiteral));
      enc.PutLengthPrefixed(input.subspan(literal_start, end - literal_start));
    }
  };

  while (pos + kMinMatch <= input.size()) {
    uint32_t h = Hash4(input.data() + pos);
    size_t best_len = 0;
    size_t best_dist = 0;
    int64_t candidate = head[h];
    size_t chain = 0;
    while (candidate >= 0 && chain < kMaxChain &&
           pos - static_cast<size_t>(candidate) <= kWindow) {
      size_t cand = static_cast<size_t>(candidate);
      size_t len = 0;
      size_t limit = std::min(input.size() - pos, kMaxMatch);
      while (len < limit && input[cand + len] == input[pos + len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_dist = pos - cand;
      }
      candidate = prev[cand];
      ++chain;
    }

    if (best_len >= kMinMatch) {
      flush_literals(pos);
      enc.PutU8(static_cast<uint8_t>(Token::kMatch));
      enc.PutVarint(best_dist);
      enc.PutVarint(best_len);
      // Insert hash entries for the matched region (sparsely, for speed).
      size_t end = pos + best_len;
      for (; pos < end && pos + kMinMatch <= input.size(); pos += 2) {
        uint32_t h2 = Hash4(input.data() + pos);
        prev[pos] = head[h2];
        head[h2] = static_cast<int64_t>(pos);
      }
      pos = end;
      literal_start = pos;
    } else {
      prev[pos] = head[h];
      head[h] = static_cast<int64_t>(pos);
      ++pos;
    }
  }
  flush_literals(input.size());
  return enc.Take();
}

Result<Bytes> LzDecompress(ByteSpan compressed) {
  Decoder dec(compressed);
  S4_ASSIGN_OR_RETURN(uint32_t magic, dec.U32());
  if (magic != kLzMagic) {
    return Status::DataCorruption("bad lz magic");
  }
  S4_ASSIGN_OR_RETURN(uint64_t size, dec.Varint());
  Bytes out;
  out.reserve(size);
  while (!dec.done()) {
    S4_ASSIGN_OR_RETURN(uint8_t token, dec.U8());
    if (token == static_cast<uint8_t>(Token::kLiteral)) {
      S4_ASSIGN_OR_RETURN(Bytes literal, dec.LengthPrefixed());
      out.insert(out.end(), literal.begin(), literal.end());
    } else if (token == static_cast<uint8_t>(Token::kMatch)) {
      S4_ASSIGN_OR_RETURN(uint64_t dist, dec.Varint());
      S4_ASSIGN_OR_RETURN(uint64_t len, dec.Varint());
      if (dist == 0 || dist > out.size()) {
        return Status::DataCorruption("lz match distance out of range");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) are legal and
      // reproduce run-length behaviour.
      size_t from = out.size() - dist;
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[from + i]);
      }
    } else {
      return Status::DataCorruption("bad lz token");
    }
  }
  if (out.size() != size) {
    return Status::DataCorruption("lz size mismatch");
  }
  return out;
}

}  // namespace s4
